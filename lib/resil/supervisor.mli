(** A retrying supervisor around the chase.

    [run] executes the chase under a fault trigger per attempt (from a
    {!Fault.plan} in tests, or nothing in production where faults are
    whatever the process actually hits), checkpoints at clean pass
    boundaries, and on failure backs off and resumes from the last
    checkpoint instead of restarting from scratch. After [retries]
    failed retries on the primary engine it {e degrades} down the ladder
    [`Parallel _] → [`Indexed] → [`Naive] — still resuming from the last
    checkpoint (checkpoints are engine-agnostic) — and after exhausting
    the last rung's attempts gives up with a typed diagnostic.

    State machine of one [run]:
    {v
      attempt(engine, k)  --fault-->  backoff; k+1 ≤ retries+1 ? retry
                                      : degrade (Parallel→Indexed→Naive)
      attempt(`Naive, k)  --fault-->  backoff; k+1 ≤ retries+1 ? retry
                                      : Failed
      any attempt --success--> Completed / Recovered / Degraded
    v}

    No exception escapes: injected faults, IO errors and unexpected
    exceptions become attempts in the log or a [Failed] outcome;
    [Invalid_argument] (a violated library precondition — deterministic,
    retrying cannot help) fails fast without burning retries. *)

type attempt = {
  attempt : int;  (** 1-based, counted across engines *)
  engine : Tgds.Chase.engine;  (** engine the attempt ran on *)
  fault : string;  (** what killed it *)
  resumed_from : int option;
      (** checkpoint level the attempt started from; [None] = scratch *)
  backoff_ms : float;  (** delay slept after this failure *)
}

type attempt_log = attempt list

type diagnostic = {
  message : string;
  attempts : attempt_log;  (** in chronological order *)
}

type outcome =
  | Completed of Tgds.Chase.result  (** first attempt succeeded *)
  | Recovered of Tgds.Chase.result * attempt_log
      (** succeeded on the primary engine after ≥ 1 failure *)
  | Degraded of Tgds.Chase.result * attempt_log
      (** succeeded only after degrading to a fallback engine *)
  | Failed of diagnostic  (** all attempts exhausted, or a precondition *)

(** [run ?engine ?policy ?budget ?checkpoint_every ?checkpoint_path
    ?resume_from ?retries ?backoff_ms ?max_backoff_ms ?sleep ?clock
    ?fault_plan ?obs sigma db] — supervise a chase of [db] under
    [sigma].

    - [checkpoint_every] (default 1): take a checkpoint at every Kth
      clean pass boundary (the saturating boundary always checkpoints);
    - [checkpoint_path]: additionally persist each checkpoint to disk
      ({!Checkpoint.save});
    - [resume_from]: start from a loaded checkpoint instead of [db];
    - [retries] (default 2): extra attempts per engine after the first;
    - backoff before retry [k] is
      [min max_backoff_ms (backoff_ms · 2^(k−1))] (defaults 50/1000 ms),
      slept via [sleep] (seconds; default [Unix.sleepf] — tests inject a
      recorder);
    - [clock] feeds [After_ms] fault triggers;
    - [fault_plan] (default {!Fault.none}) arms trigger [k] for attempt
      [k]. *)
val run :
  ?engine:Tgds.Chase.engine ->
  ?policy:Tgds.Chase.policy ->
  ?budget:Obs.Budget.t ->
  ?checkpoint_every:int ->
  ?checkpoint_path:string ->
  ?resume_from:Checkpoint.t ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?sleep:(float -> unit) ->
  ?clock:(unit -> float) ->
  ?fault_plan:Fault.plan ->
  ?obs:Obs.Span.t ->
  Tgds.Tgd.t list ->
  Relational.Instance.t ->
  outcome
