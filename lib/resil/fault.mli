(** Deterministic fault injection.

    The chase runtime is instrumented with {!Obs.Probe} points at its
    natural step boundaries ([engine.pass], [engine.insert],
    [engine.join], [chase.pass], [full_chase.round],
    [ground_closure.round]). A {e trigger} arms the global probe hook to
    raise {!Injected} at a chosen point: the Nth probe hit overall, the
    Nth hit of one named point, or once an (injectable) clock passes a
    wall-clock mark. Arming is deterministic — re-running the same
    computation with the same trigger fails at the same step — which is
    what makes the supervisor's kill-and-resume behaviour testable.

    A {e plan} is one trigger per supervised attempt: attempt [k] runs
    under trigger [k] (1-based); attempts beyond the plan's length run
    fault-free, so a plan of length [n] describes a run that fails [n]
    times and then succeeds. *)

(** Raised from inside an armed probe point. The payload is the point
    name and the overall hit count at the moment of failure. *)
exception Injected of string * int

type trigger =
  | At_hit of int  (** fail at the Nth probe hit, any point (1-based) *)
  | At_point of string * int  (** fail at the Nth hit of the named point *)
  | Every_point of string
      (** fail at {e every} hit of the named point. Counterless — the
          armed hook touches no mutable state, so it is safe to hit from
          concurrent domains (the concurrent server's poison queries);
          the {!Injected} hit payload is a fixed [1] so failure messages
          stay canonical. In {!arm_seq} it never advances the sequence. *)
  | After_ms of float  (** fail at the first hit ≥ this many ms after arming *)

(** One trigger per attempt; [[]] is the fault-free plan. *)
type plan = trigger list

val none : plan

(** A non-empty plan made only of [Every_point] triggers: arming it
    installs a hook with no mutable state, so it stays deterministic
    under concurrent probe hits from multiple domains. *)
val stateless : plan -> bool

(** [trigger_for plan ~attempt] — the trigger arming attempt [attempt]
    (1-based); [None] past the end of the plan. *)
val trigger_for : plan -> attempt:int -> trigger option

(** [arm ?clock trigger] — install the probe hook. [clock] is wall-clock
    seconds for [After_ms] (tests inject fake time); defaults to
    [Unix.gettimeofday]. Replaces any previously armed trigger. *)
val arm : ?clock:(unit -> float) -> trigger -> unit

(** Remove the armed trigger (idempotent). *)
val disarm : unit -> unit

(** [arm_seq ?clock plan] — arm the {e whole} plan over one long-running
    computation (a [serve] mutation loop), instead of one trigger per
    supervised attempt: trigger 1 is live first; when it fires, trigger 2
    becomes live (its hit/point/clock counters restart at the moment of
    advancement), and so on. A plan of length [n] injects exactly [n]
    faults, then the computation runs fault-free. [arm_seq []] disarms. *)
val arm_seq : ?clock:(unit -> float) -> plan -> unit

(** [suspended f] — run [f ()] with the currently armed trigger (or
    sequence) lifted, re-installing it afterwards with its counters
    intact. Recovery machinery (state restoration, replay of
    previously-successful mutations) runs under [suspended] so a plan's
    triggers fire on the supervised path itself, not on the repair of an
    earlier firing. No-op when nothing is armed. *)
val suspended : (unit -> 'a) -> 'a

(** [with_trigger ?clock trig f] — run [f ()] with [trig] armed ([None]
    arms nothing), disarming afterwards even if [f] raises. *)
val with_trigger : ?clock:(unit -> float) -> trigger option -> (unit -> 'a) -> 'a

(** [random ~seed ?attempts ?max_hits ()] — a reproducible plan of
    [attempts] (default 3) [At_hit] triggers drawn from
    [1..max_hits] (default 500) by a fixed LCG; same seed, same plan. *)
val random : seed:int -> ?attempts:int -> ?max_hits:int -> unit -> plan

(** Parse a plan spec. Grammar:
    {v
    spec    ::= "none" | "seed:" INT [ ":" INT ]   (* seed [, attempts] *)
              | trigger ("," trigger)*
    trigger ::= "hit:" INT | "point:" NAME ":" INT
              | "point:" NAME ":*" | "ms:" FLOAT
    v}
    [NAME] is a probe point name (contains no [':'] or [',']);
    [point:NAME:*] is the always-fire [Every_point] trigger. *)
val parse : string -> (plan, string) result

(** Inverse of {!parse} (canonical form; [random] plans print as their
    expansion). *)
val to_string : plan -> string
