(** Counters and duration histograms; see the interface. *)

type counter = { mutable n : int }

(* log-spaced upper bounds in seconds; a final overflow bucket catches the
   rest *)
let bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

type histo = {
  mutable hcount : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  hits : int array;  (* length = Array.length bounds + 1 *)
}

type t = {
  cs : (string, counter) Hashtbl.t;
  hs : (string, histo) Hashtbl.t;
}

let create () = { cs = Hashtbl.create 16; hs = Hashtbl.create 8 }

let counter m name =
  match Hashtbl.find_opt m.cs name with
  | Some c -> c
  | None ->
      let c = { n = 0 } in
      Hashtbl.replace m.cs name c;
      c

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let value c = c.n

let count m name =
  match Hashtbl.find_opt m.cs name with Some c -> c.n | None -> 0

let observe m name v =
  let h =
    match Hashtbl.find_opt m.hs name with
    | Some h -> h
    | None ->
        let h =
          {
            hcount = 0;
            sum = 0.;
            vmin = infinity;
            vmax = neg_infinity;
            hits = Array.make (Array.length bounds + 1) 0;
          }
        in
        Hashtbl.replace m.hs name h;
        h
  in
  h.hcount <- h.hcount + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let rec slot i =
    if i >= Array.length bounds then i else if v <= bounds.(i) then i else slot (i + 1)
  in
  let s = slot 0 in
  h.hits.(s) <- h.hits.(s) + 1

let counters m =
  Hashtbl.fold (fun name c acc -> (name, c.n) :: acc) m.cs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let absorb ~into src =
  List.iter (fun (name, v) -> add (counter into name) v) (counters src)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let summarize h =
  let buckets = ref [] in
  for i = Array.length h.hits - 1 downto 0 do
    if h.hits.(i) > 0 then
      let bound = if i < Array.length bounds then bounds.(i) else infinity in
      buckets := (bound, h.hits.(i)) :: !buckets
  done;
  {
    count = h.hcount;
    sum = h.sum;
    min = (if h.hcount = 0 then 0. else h.vmin);
    max = (if h.hcount = 0 then 0. else h.vmax);
    buckets = !buckets;
  }

let histograms m =
  Hashtbl.fold (fun name h acc -> (name, summarize h) :: acc) m.hs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json m =
  let counters_json =
    Json.Obj (List.map (fun (name, n) -> (name, Json.Int n)) (counters m))
  in
  let histo_json (name, s) =
    ( name,
      Json.Obj
        [
          ("count", Json.Int s.count);
          ("sum_s", Json.Float s.sum);
          ("min_s", Json.Float s.min);
          ("max_s", Json.Float s.max);
          ( "buckets",
            Json.List
              (List.map
                 (fun (bound, hits) ->
                   Json.Obj
                     [
                       ( "le_s",
                         if bound = infinity then Json.String "inf"
                         else Json.Float bound );
                       ("hits", Json.Int hits);
                     ])
                 s.buckets) );
        ] )
  in
  Json.Obj
    [
      ("counters", counters_json);
      ("histograms", Json.Obj (List.map histo_json (histograms m)));
    ]
