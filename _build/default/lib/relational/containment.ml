(** Classical (constraint-free) containment of CQs and UCQs
    (Chandra–Merlin, [17]). *)

open Term

(** [cq_contained q1 q2] — [q1 ⊆ q2]: a homomorphism from [q2] to [D[q1]]
    mapping answer variables to the frozen answer of [q1]. *)
let cq_contained (q1 : Cq.t) (q2 : Cq.t) =
  Cq.arity q1 = Cq.arity q2
  &&
  let db = Cq.canonical_db q1 in
  let init =
    List.fold_left2
      (fun acc x c -> VarMap.add x c acc)
      VarMap.empty (Cq.answer q2) (Cq.frozen_answer q1)
  in
  Homomorphism.exists ~init (Cq.atoms q2) db

let cq_equivalent q1 q2 = cq_contained q1 q2 && cq_contained q2 q1

(** UCQ containment: [u1 ⊆ u2] iff every disjunct of [u1] is contained in
    some disjunct of [u2] (sound and complete for UCQs). *)
let ucq_contained u1 u2 =
  List.for_all
    (fun p1 -> List.exists (fun p2 -> cq_contained p1 p2) (Ucq.disjuncts u2))
    (Ucq.disjuncts u1)

let ucq_equivalent u1 u2 = ucq_contained u1 u2 && ucq_contained u2 u1

(** Drop disjuncts subsumed by other disjuncts (containment-minimal UCQ). *)
let minimize_ucq u =
  let ds = Ucq.disjuncts (Ucq.dedup u) in
  let rec keep acc = function
    | [] -> List.rev acc
    | q :: rest ->
        let others = acc @ rest in
        if List.exists (fun q' -> cq_contained q q') others then keep acc rest
        else keep (q :: acc) rest
  in
  Ucq.make (keep [] ds)
