examples/dl_ontology.ml: Atom Cq Dl Fmt Guarded_core Instance List Omq Omq_eval Relational Term Tgds Ucq
