(** Immutable snapshot of a saturated fact store.

    The query server saturates once, then serves many concurrent
    requests from the result. This module is the seam between those two
    phases: {!freeze} captures a chased {!Index} together with the
    certain-answer universe (the active domain of the {e input}
    database, nulls excluded) and whether saturation completed, and from
    then on the snapshot is read-only by contract — no handle capable of
    mutation is reachable through this interface.

    Each worker domain obtains its own {!view} (an {!Index.reader}
    wrapping the shared tables with a private metrics registry), so
    posting-list probe accounting never races across domains; the server
    drains view registries back into its report with
    {!Obs.Metrics.absorb} in worker order, keeping merged totals
    reproducible under any worker count. Concurrent reads of the shared
    tables are safe precisely because nothing mutates them after
    {!freeze} — the snapshot owns the only references. *)

open Relational
open Relational.Term

type t
(** A frozen saturated store. Safe to share across domains. *)

type view
(** A per-worker read handle: shares the snapshot's fact tables, owns a
    private metrics registry. Create one per domain; never share a view
    between domains. *)

val freeze : saturated:bool -> universe:ConstSet.t -> Index.t -> t
(** [freeze ~saturated ~universe idx] — seal [idx] as a snapshot. The
    caller must hand over ownership: mutating [idx] (or any reader of
    it) after freezing is a data race against concurrent views.
    [universe] is the answer universe ({!Relational.Instance.dom} of the
    input database); nulls are filtered by the enumerator. [saturated]
    records whether the chase completed within budget — serving from an
    unsaturated store is sound but incomplete, and the flag lets the
    server mark every reply accordingly. *)

val saturated : t -> bool
val universe : t -> ConstSet.t

val size : t -> int
(** Number of distinct facts in the frozen store. *)

val symtab : t -> Symtab.t
(** The shared symbol table (needed to render interned constants). *)

val view : t -> view
(** A fresh per-worker read handle: shares tables, owns a private
    metrics registry and a private {!Enumerate.ctx} (compiled universe,
    seen-set, answer arena) reused across every request the worker
    serves. O(universe) to build, then allocation-lean per request. *)

val view_metrics : view -> Obs.Metrics.t
(** The view's private registry ([index.probes], [joiner.*]), for
    absorbing into a server-wide report after the worker joins. *)

val ucq_i :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  view ->
  Ucq.t ->
  Enumerate.interned
(** [ucq_i v q] — certain answers of [q] over the frozen store, through
    worker view [v], as an interned result the server renders and
    counts without materializing: the per-request hot path. [?budget]
    gives per-request admission control (a violated budget returns a
    [Partial] prefix); [?obs] attaches the enumeration spans to the
    request's span. *)

val ucq :
  ?budget:Obs.Budget.t ->
  ?obs:Obs.Span.t ->
  view ->
  Ucq.t ->
  Enumerate.result
(** {!ucq_i} materialized: the classic [const list list] form. *)
