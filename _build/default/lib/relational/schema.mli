(** Relational schemas: finite sets of predicates with arities (§2). *)

type t

val empty : t

(** [of_list [(p, ar); …]] — duplicate predicates must agree on arity
    (raises [Invalid_argument] otherwise). *)
val of_list : (string * int) list -> t

val add : string -> int -> t -> t
val mem : string -> t -> bool
val arity_of : string -> t -> int option
val predicates : t -> string list
val bindings : t -> (string * int) list
val cardinal : t -> int

(** [ar s] — the arity of the schema: the maximum predicate arity (0 for
    the empty schema). *)
val ar : t -> int

(** Union; raises [Invalid_argument] on arity conflicts. *)
val union : t -> t -> t

val subset : t -> t -> bool
val equal : t -> t -> bool
val diff : t -> t -> t
val pp : Format.formatter -> t -> unit
