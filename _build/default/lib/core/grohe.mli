(** The (modified) Grohe databases — the engines of the W[1]-hardness
    reductions: Theorem 6.1 (with set [A], isolated constants and the
    ontoness condition) and Theorem 7.1 / Lemma H.2 (the [D*(G,D,D',A,μ)]
    variant with labelled cliques). *)

open Relational

(** The unordered pairs over [k] in a fixed order (the bijection χ). *)
val pairs : int -> (int * int) list

(** [K = k(k−1)/2]. *)
val capital_k : int -> int

(** The [k × K] grid as a graph; vertex [(i,p)] (1-based) is
    [(i−1)·K + (p−1)]. *)
val grid : int -> Qgraph.Graph.t

val grid_vertex : int -> i:int -> p:int -> int

type minor_map = {
  branch : Term.ConstSet.t array array;
      (** [branch.(i-1).(p-1)] — branch set [μ(i,p)] *)
  position : (int * int) Term.ConstMap.t;
      (** inverse: covered constant ↦ its [(i,p)] *)
}

(** Search a minor map of the [k × K]-grid onto [G^D|A] (one connected
    component, extended onto). *)
val find_minor_map : k:int -> Instance.t -> Term.ConstSet.t -> minor_map option

type built = {
  db : Instance.t;
  h0 : Term.const Term.ConstMap.t;  (** the projection onto the source *)
}

(** The database [D*(G,D,D′,A,μ)] of Theorem 7.1 (labelled cliques);
    requires [d ⊆ d'] and [A] covered by [mu]. *)
val cqs_construction :
  graph:Qgraph.Graph.t ->
  k:int ->
  d:Instance.t ->
  d':Instance.t ->
  a:Term.ConstSet.t ->
  mu:minor_map ->
  built

(** The database [D_G] of Theorem 6.1 (conditions (C1)/(C2) by
    per-row/per-column choices). *)
val omq_construction :
  graph:Qgraph.Graph.t ->
  k:int ->
  d:Instance.t ->
  a:Term.ConstSet.t ->
  mu:minor_map ->
  built

(** Item (2) of both theorems: a homomorphism [h : d → db] with
    [h0(h(·))] the identity on [a] (via marker predicates). *)
val clique_criterion : a:Term.ConstSet.t -> built -> Instance.t -> bool

(** Item (1): [h0] is a homomorphism onto the source database. *)
val h0_is_homomorphism : built -> Instance.t -> bool
