#!/bin/sh
# Repository check: formatting (when ocamlformat is available), build, tests.
# Run from the repository root:  sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (stats JSON round-trip)"
dune exec bench/main.exe -- smoke
rm -f BENCH_smoke.json

echo "== kill-and-resume (checkpointed chase survives an injected crash)"
CLI=_build/default/bin/guarded_cli.exe
PROG=examples/programs/prog_budget.gd
BUDGET="--max-level 1000 --budget-facts 40"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
# shellcheck disable=SC2086  # BUDGET is a flag list
"$CLI" chase "$PROG" $BUDGET --stats "$TMP/base.json" > /dev/null
# kill attempt 1 mid-saturation, then attempt 2 (degraded to the naive
# engine) at its first pass — before it can overwrite the checkpoint
set +e
# shellcheck disable=SC2086
"$CLI" chase "$PROG" $BUDGET --retries 0 \
  --fault-plan hit:60,point:chase.pass:1 --checkpoint "$TMP/ck.json" \
  > /dev/null 2>&1
killed=$?
set -e
[ "$killed" -eq 1 ] || { echo "expected exit 1 from the killed run, got $killed"; exit 1; }
[ -s "$TMP/ck.json" ] || { echo "no checkpoint emitted by the killed run"; exit 1; }
# shellcheck disable=SC2086
"$CLI" chase "$PROG" $BUDGET --resume "$TMP/ck.json" --stats "$TMP/resumed.json" > /dev/null
# the resumed report must agree with the uninterrupted one on everything
# before the histograms/span tail (those only cover the post-resume part)
sed -E 's/,"histograms":.*$//' "$TMP/base.json" > "$TMP/base.cut"
sed -E 's/,"histograms":.*$//' "$TMP/resumed.json" > "$TMP/resumed.cut"
diff "$TMP/base.cut" "$TMP/resumed.cut" \
  || { echo "resumed stats diverge from the uninterrupted run"; exit 1; }

echo "== OK"
