test/test_qgraph.ml: Alcotest Fmt Fun Graph ISet List Minor QCheck QCheck_alcotest Qgraph Tree_decomposition Treewidth
