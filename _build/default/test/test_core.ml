(* Tests for the core library: bounded-treewidth evaluation, OMQ/CQS
   evaluation, Σ-containment, finite witnesses, approximations and the meta
   problem (Example 4.4), the Grohe constructions and the fpt-reductions. *)

open Relational
open Relational.Term
open Guarded_core
module Tgd = Tgds.Tgd

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let tgd body head = Tgd.make ~body ~head
let bool_q atoms = Ucq.of_cq (Cq.make atoms)

(* ------------------------------------------------------------------ *)
(* Tw_eval (Proposition 2.1)                                            *)
(* ------------------------------------------------------------------ *)

let test_tw_eval_agrees_with_naive () =
  let db = Workload.path_db 6 in
  let q = Workload.path_cq 3 in
  check "path query holds" true (Tw_eval.holds db q);
  check "agrees with naive" true (Tw_eval.holds db q = Cq.holds db q);
  let q10 = Workload.path_cq 10 in
  check "too-long path fails" false (Tw_eval.holds db q10);
  (* with answer variables *)
  let qa =
    Cq.make ~answer:[ "x0" ]
      [ atom "E" [ v "x0"; v "x1" ]; atom "E" [ v "x1"; v "x2" ] ]
  in
  check "candidate accepted" true (Tw_eval.entails db qa [ Named "a0" ]);
  check "candidate rejected" false (Tw_eval.entails db qa [ Named "a5" ]);
  check_int "answers enumerated" 5 (List.length (Tw_eval.answers db qa))

let test_tw_eval_grid () =
  let db = Workload.grid_db 4 4 in
  let q = Workload.grid_cq 3 3 in
  check "grid in grid" true (Tw_eval.holds db q);
  let q5 = Workload.grid_cq 5 5 in
  check "bigger grid not in 4x4" false (Tw_eval.holds db q5)

let test_tw_eval_ground_and_constants () =
  let db = Instance.of_facts [ fact "R" [ "a"; "b" ] ] in
  let q_ground = Cq.make [ atom "R" [ Term.const "a"; Term.const "b" ] ] in
  check "ground query" true (Tw_eval.holds db q_ground);
  let q_bad = Cq.make [ atom "R" [ Term.const "b"; Term.const "a" ] ] in
  check "ground query false" false (Tw_eval.holds db q_bad)

(* qcheck: Tw_eval ≡ naive evaluation *)
let gen_cq_db =
  QCheck.Gen.(
    let vars = [ "x"; "y"; "z"; "u" ] in
    let gv = map (List.nth vars) (int_range 0 3) in
    let gen_atom =
      let* a = gv and* b = gv in
      map (fun p -> atom (if p = 0 then "E" else "F") [ v a; v b ]) (int_range 0 1)
    in
    let* atoms = list_size (int_range 1 4) gen_atom in
    let consts = [ "a"; "b"; "c" ] in
    let gc = map (List.nth consts) (int_range 0 2) in
    let gen_fact =
      let* a = gc and* b = gc in
      map (fun p -> fact (if p = 0 then "E" else "F") [ a; b ]) (int_range 0 1)
    in
    let* facts = list_size (int_range 0 7) gen_fact in
    return (Cq.make atoms, Instance.of_facts facts))

let prop_tw_eval_correct =
  QCheck.Test.make ~name:"Tw_eval agrees with naive evaluation" ~count:150
    (QCheck.make
       ~print:(fun (q, db) -> Fmt.str "%a over %a" Cq.pp q Instance.pp db)
       gen_cq_db)
    (fun (q, db) -> Tw_eval.holds db q = Cq.holds db q)

(* ------------------------------------------------------------------ *)
(* OMQ evaluation                                                       *)
(* ------------------------------------------------------------------ *)

let university_omq q =
  Omq.full_data_schema ~ontology:(Workload.university_ontology ()) ~query:q

let test_omq_eval_baseline () =
  let db = Instance.of_facts [ fact "Prof" [ "ada" ] ] in
  let q = bool_q [ atom "Dept" [ v "d" ] ] in
  let omq = university_omq q in
  let r = Omq_eval.certain omq db [] in
  check "dept certain" true r.Omq_eval.holds;
  check "exact" true r.Omq_eval.exact;
  let q2 = bool_q [ atom "Student" [ v "s" ] ] in
  let r2 = Omq_eval.certain (university_omq q2) db [] in
  check "student not certain" false r2.Omq_eval.holds

let test_omq_eval_fpt_agrees () =
  let db =
    Instance.of_facts [ fact "Prof" [ "ada" ]; fact "Course" [ "logic" ] ]
  in
  let queries =
    [
      bool_q [ atom "Dept" [ v "d" ] ];
      bool_q [ atom "Teaches" [ v "x"; v "c" ]; atom "OfferedBy" [ v "c"; v "d" ] ];
      bool_q [ atom "Faculty" [ v "x" ] ];
      bool_q [ atom "Prof" [ v "x" ]; atom "Dept" [ v "x" ] ];
    ]
  in
  List.iter
    (fun q ->
      let omq = university_omq q in
      let base = Omq_eval.certain omq db [] in
      let fpt = Omq_eval.certain_fpt omq db [] in
      check "baseline exact" true base.Omq_eval.exact;
      check "fpt agrees with baseline" true
        (base.Omq_eval.holds = fpt.Omq_eval.holds))
    queries

let test_omq_eval_infinite_chase () =
  (* manager ontology: infinite chase, answers via ground closure and
     bounded chase *)
  let sigma = Workload.manager_ontology () in
  let db = Instance.of_facts [ fact "Emp" [ "eve" ] ] in
  check "Managed(eve) certain (atomic, exact)" true
    (Omq_eval.certain_atomic sigma db (fact "Managed" [ "eve" ]));
  check "Managed(bob) not certain" false
    (Omq_eval.certain_atomic sigma db (fact "Managed" [ "bob" ]));
  let q = bool_q [ atom "ReportsTo" [ v "x"; v "m" ]; atom "Managed" [ v "m" ] ] in
  let omq = Omq.full_data_schema ~ontology:sigma ~query:q in
  let r = Omq_eval.certain ~max_level:5 omq db [] in
  check "certain despite infinite chase" true r.Omq_eval.holds

let test_omq_data_schema_enforced () =
  let omq =
    Omq.make
      ~data_schema:(Schema.of_list [ ("Prof", 1) ])
      ~ontology:(Workload.university_ontology ())
      ~query:(bool_q [ atom "Dept" [ v "d" ] ])
  in
  check "non-S database rejected" true
    (try
       ignore (Omq_eval.certain omq (Instance.of_facts [ fact "Dept" [ "d1" ] ]) []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* CQS evaluation and semantic optimization                             *)
(* ------------------------------------------------------------------ *)

let test_cqs_eval_and_promise () =
  let constraints = Workload.referential_constraints () in
  let db =
    Instance.of_facts
      [
        fact "Customer" [ "c1" ];
        fact "Order" [ "o1"; "c1" ];
        fact "Line" [ "l1"; "o1" ];
      ]
  in
  let s =
    Cqs.make ~constraints
      ~query:(Ucq.of_cq (Cq.make ~answer:[ "l" ] [ atom "Line" [ v "l"; v "o" ] ]))
  in
  check "promise holds" true (Cqs.admissible s db);
  check "closed-world answer" true (Cqs_eval.eval s db [ Named "l1" ]);
  let bad = Instance.of_facts [ fact "Order" [ "o9"; "ghost" ] ] in
  check "promise violated detected" false (Cqs.admissible s bad)

let test_cqs_semantic_optimization () =
  (* Σ: Order(o,c) → Customer(c). The join with Customer is redundant on
     admissible databases. *)
  let constraints = Workload.referential_constraints () in
  let q =
    Cq.make ~answer:[ "o" ]
      [ atom "Order" [ v "o"; v "c" ]; atom "Customer" [ v "c" ] ]
  in
  let s = Cqs.make ~constraints ~query:(Ucq.of_cq q) in
  let s' = Cqs_eval.optimize s in
  let atoms' =
    List.concat_map Cq.atoms (Ucq.disjuncts (Cqs.query s'))
  in
  check_int "redundant join removed" 1 (List.length atoms');
  (* answers agree on admissible databases *)
  let db =
    Instance.of_facts
      [ fact "Customer" [ "c1" ]; fact "Order" [ "o1"; "c1" ]; fact "Customer" [ "c2" ] ]
  in
  check "optimized answers agree" true
    (Cqs_eval.answers s db = Cqs_eval.answers s' db)

(* ------------------------------------------------------------------ *)
(* Σ-containment (Proposition 4.5)                                      *)
(* ------------------------------------------------------------------ *)

let test_sigma_containment () =
  let sigma = [ tgd [ atom "R2" [ v "x" ] ] [ atom "R4" [ v "x" ] ] ] in
  let q1 = Cq.make [ atom "R2" [ v "x" ]; atom "R4" [ v "x" ] ] in
  let q2 = Cq.make [ atom "R2" [ v "x" ] ] in
  (* under Σ, R2 implies R4, so both directions hold *)
  check "q2 ⊆_Σ q1" true (Sigma_containment.cq_contained sigma q2 q1 = Holds);
  check "q1 ⊆_Σ q2" true (Sigma_containment.cq_contained sigma q1 q2 = Holds);
  (* without Σ, q2 ⊄ q1 *)
  check "without Σ fails" true (Sigma_containment.cq_contained [] q2 q1 = Fails)

let test_sigma_containment_infinite () =
  (* Σ with infinite chase; non-containment must be detected via the
     finite witness *)
  let sigma =
    [
      tgd [ atom "Emp" [ v "x" ] ] [ atom "RT" [ v "x"; v "m" ] ];
      tgd [ atom "RT" [ v "x"; v "m" ] ] [ atom "Emp" [ v "m" ] ];
    ]
  in
  let q1 = Cq.make [ atom "Emp" [ v "x" ] ] in
  let q_loop = Cq.make [ atom "RT" [ v "x"; v "x" ] ] in
  let q_chain = Cq.make [ atom "RT" [ v "x"; v "y" ]; atom "RT" [ v "y"; v "z" ] ] in
  check "chain certain" true (Sigma_containment.cq_contained sigma q1 q_chain = Holds);
  check "loop not entailed" true
    (Sigma_containment.cq_contained sigma q1 q_loop = Fails)

let test_sigma_minimize () =
  let sigma = [ tgd [ atom "R2" [ v "x" ] ] [ atom "R4" [ v "x" ] ] ] in
  let q = Cq.make [ atom "R2" [ v "x" ]; atom "R4" [ v "x" ] ] in
  let m = Sigma_containment.minimize sigma q in
  check_int "one atom after minimization" 1 (List.length (Cq.atoms m));
  check "R2 kept" true (List.exists (fun a -> Atom.pred a = "R2") (Cq.atoms m))

(* ------------------------------------------------------------------ *)
(* Finite witnesses (Theorem 6.7)                                       *)
(* ------------------------------------------------------------------ *)

let test_finite_witness_model () =
  let sigma = Workload.manager_ontology () in
  let db = Instance.of_facts [ fact "Emp" [ "eve" ] ] in
  let m = Finite_witness.build ~n:3 sigma db in
  check "finite" true (Instance.size m < 1000);
  check "is a model" true (Finite_witness.verify sigma db m);
  (* query preservation for small queries, against the bounded chase *)
  let chase5 = Tgds.Chase.chase ~max_level:6 sigma db in
  let queries =
    [
      bool_q [ atom "ReportsTo" [ v "x"; v "x" ] ];
      bool_q [ atom "ReportsTo" [ v "x"; v "y" ]; atom "ReportsTo" [ v "y"; v "x" ] ];
      bool_q [ atom "ReportsTo" [ v "x"; v "y" ]; atom "Managed" [ v "y" ] ];
      bool_q [ atom "Emp" [ v "x" ]; atom "Managed" [ v "x" ] ];
    ]
  in
  List.iter
    (fun q ->
      check "witness answers like the chase" true
        (Ucq.holds m q = Ucq.holds chase5 q))
    queries

let test_finite_witness_no_spurious_loop () =
  let sigma =
    [
      tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "z" ] ];
      tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "S" [ v "y"; v "z" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "A" [ "a" ] ] in
  let m = Finite_witness.build ~n:2 sigma db in
  check "model" true (Finite_witness.verify sigma db m);
  check "no self loop" false (Ucq.holds m (bool_q [ atom "S" [ v "x"; v "x" ] ]));
  check "no 2-cycle" false
    (Ucq.holds m (bool_q [ atom "S" [ v "x"; v "y" ]; atom "S" [ v "y"; v "x" ] ]))

(* ------------------------------------------------------------------ *)
(* Approximation and the meta problem — Example 4.4                     *)
(* ------------------------------------------------------------------ *)

let example_4_4_query () =
  Cq.make
    [
      atom "P" [ v "x2"; v "x1" ];
      atom "P" [ v "x4"; v "x1" ];
      atom "P" [ v "x2"; v "x3" ];
      atom "P" [ v "x4"; v "x3" ];
      atom "R1" [ v "x1" ];
      atom "R2" [ v "x2" ];
      atom "R3" [ v "x3" ];
      atom "R4" [ v "x4" ];
    ]

let test_example_4_4 () =
  (* Q1 = (S, {R2(x) → R4(x)}, q) is uniformly UCQ1-equivalent although q
     itself is a core of treewidth 2 (§4.1). *)
  let sigma = [ tgd [ atom "R2" [ v "x" ] ] [ atom "R4" [ v "x" ] ] ] in
  let q = example_4_4_query () in
  check_int "q has treewidth 2" 2 (Cq.treewidth q);
  let s = Cqs.make ~constraints:sigma ~query:(Ucq.of_cq q) in
  let verdict, witness = Equivalence.cqs_uniformly_ucqk_equivalent 1 s in
  check "uniformly UCQ1-equivalent" true (verdict = Equivalence.Holds);
  (match witness with
  | Some sa -> check "witness in UCQ1" true (Cqs.in_ucqk 1 sa)
  | None -> Alcotest.fail "expected a witness");
  (* without the ontology the same query is NOT UCQ1-equivalent *)
  let s0 = Cqs.make ~constraints:[] ~query:(Ucq.of_cq q) in
  let verdict0, _ = Equivalence.cqs_uniformly_ucqk_equivalent 1 s0 in
  check "not equivalent without Σ" true (verdict0 = Equivalence.Fails);
  (* and it is (trivially) UCQ2-equivalent *)
  let verdict2, _ = Equivalence.cqs_uniformly_ucqk_equivalent 2 s0 in
  check "UCQ2-equivalent" true (verdict2 = Equivalence.Holds)

let test_semantic_ucq_treewidth () =
  let sigma = [ tgd [ atom "R2" [ v "x" ] ] [ atom "R4" [ v "x" ] ] ] in
  let s = Cqs.make ~constraints:sigma ~query:(Ucq.of_cq (example_4_4_query ())) in
  match Equivalence.semantic_ucq_treewidth s with
  | Some (k, _) -> check_int "semantic UCQ-treewidth is 1" 1 k
  | None -> Alcotest.fail "expected a semantic treewidth"

let test_omq_equivalence_via_cqs () =
  let sigma = [ tgd [ atom "R2" [ v "x" ] ] [ atom "R4" [ v "x" ] ] ] in
  let omq =
    Omq.full_data_schema ~ontology:sigma ~query:(Ucq.of_cq (example_4_4_query ()))
  in
  let verdict, _ = Equivalence.omq_ucqk_equivalent 1 omq in
  check "full-data-schema OMQ UCQ1-equivalent" true (verdict = Equivalence.Holds)

let test_grounding_approximation_small () =
  (* tiny instance of Definition C.6: q() :- R2(x), R4(x) with
     Σ = {R2(x) → R4(x)}: the grounding-based approximation at k=1 must be
     equivalent (specialization contracts nothing; grounding replaces the
     component by a guarded full CQ) *)
  let sigma = [ tgd [ atom "R2" [ v "x" ] ] [ atom "R4" [ v "x" ] ] ] in
  let q = Cq.make [ atom "R2" [ v "x" ]; atom "R4" [ v "x" ] ] in
  let omq = Omq.full_data_schema ~ontology:sigma ~query:(Ucq.of_cq q) in
  let verdict, witness = Equivalence.omq_grounding_equivalent 1 omq in
  check "grounding-based equivalence holds" true (verdict = Equivalence.Holds);
  match witness with
  | Some qa -> check "approximation within UCQ1" true (Omq.in_ucqk 1 qa)
  | None -> Alcotest.fail "expected grounding witness"

(* ------------------------------------------------------------------ *)
(* Unraveling                                                           *)
(* ------------------------------------------------------------------ *)

let test_guarded_unraveling () =
  let db =
    Instance.of_facts
      [ fact "E" [ "a"; "b" ]; fact "E" [ "b"; "c" ]; fact "E" [ "c"; "a" ] ]
  in
  let start = ConstSet.of_list [ Named "a"; Named "b" ] in
  let u = Unraveling.guarded ~depth:3 db start in
  check "maps back to db" true (Unraveling.verify db u);
  (* tree-shaped: treewidth ≤ ar - 1 = 1 *)
  check "treewidth ≤ 1" true (Instance.treewidth u.Unraveling.instance <= 1);
  (* the triangle query does not hold in the unraveling *)
  let triangle =
    bool_q
      [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ]; atom "E" [ v "z"; v "x" ] ]
  in
  check "triangle holds in db" true (Ucq.holds db triangle);
  check "no triangle in unraveling" false
    (Ucq.holds u.Unraveling.instance triangle)

(* ------------------------------------------------------------------ *)
(* Grohe constructions and the clique reductions                        *)
(* ------------------------------------------------------------------ *)

let test_clique_reduction_k2 () =
  (* k = 2: K = 1, the 2×1 grid is a single edge; any query with an edge
     in its core carries the reduction. Deciding a 2-clique = deciding
     whether G has an edge. *)
  let d = Reductions.constraint_free_instance (Workload.path_cq 2) in
  check "lemma 7.2 data verifies" true (Reductions.verify_lemma72 d);
  let g_edge = Qgraph.Graph.of_edges [ (0, 1); (1, 2) ] in
  let g_empty = Qgraph.Graph.of_vertices_edges [ 0; 1; 2 ] [] in
  (match Reductions.clique_to_cqs d ~graph:g_edge ~k:2 with
  | Some ci -> check "edge graph: 2-clique found" true (Reductions.decide_clique ci)
  | None -> Alcotest.fail "expected reduction instance");
  match Reductions.clique_to_cqs d ~graph:g_empty ~k:2 with
  | Some ci ->
      check "empty graph: no 2-clique" false (Reductions.decide_clique ci)
  | None -> Alcotest.fail "expected reduction instance"

let test_clique_reduction_k3 () =
  (* k = 3: K = 3; the 3×3 grid query carries the reduction. *)
  let q = Workload.grid_cq 3 3 in
  let d = Reductions.constraint_free_instance q in
  check "grid query is its own core" true (Cq.equal d.Reductions.p (Cq.normalize q));
  let with_triangle = Workload.planted_clique ~n:6 ~k:3 ~p:0.15 ~seed:42 in
  let triangle_free = Qgraph.Graph.cycle 7 in
  check "sanity: planted has triangle" true (Qgraph.Graph.has_clique with_triangle 3);
  check "sanity: C7 triangle-free" false (Qgraph.Graph.has_clique triangle_free 3);
  (match Reductions.clique_to_cqs d ~graph:with_triangle ~k:3 with
  | Some ci ->
      check "3-clique detected through CQS evaluation" true
        (Reductions.decide_clique ci);
      (* item (1): h0 is a homomorphism onto D' *)
      check "h0 is a homomorphism" true
        (Grohe.h0_is_homomorphism ci.Reductions.d_star (Cq.canonical_db d.Reductions.p'))
  | None -> Alcotest.fail "expected minor map for 3x3 grid query");
  match Reductions.clique_to_cqs d ~graph:triangle_free ~k:3 with
  | Some ci ->
      check "triangle-free graph rejected" false (Reductions.decide_clique ci)
  | None -> Alcotest.fail "expected minor map"

let test_clique_reduction_with_constraints () =
  (* Theorem 5.13 with a non-empty guarded-full constraint set: the grid
     query over X,Y with Σ = {X(x,y) → V(x)}. D[p'] from the finite
     witness satisfies Σ. *)
  let sigma = [ tgd [ atom "X" [ v "x"; v "y" ] ] [ atom "V" [ v "x" ] ] ] in
  let q = Workload.grid_cq 3 3 in
  let s = Cqs.make ~constraints:sigma ~query:(Ucq.of_cq q) in
  let d = Reductions.lemma_7_2_data s in
  check "lemma 7.2 data verifies" true (Reductions.verify_lemma72 d);
  check "D[p'] satisfies Σ" true
    (Tgd.satisfies_all (Cq.canonical_db d.Reductions.p') sigma);
  let g = Workload.planted_clique ~n:6 ~k:3 ~p:0.1 ~seed:7 in
  match Reductions.clique_to_cqs d ~graph:g ~k:3 with
  | Some ci ->
      check "D* satisfies Σ (item 3 of Thm 7.1)" true
        (Tgd.satisfies_all ci.Reductions.d_star.Grohe.db sigma);
      check "decision matches ground truth" true
        (Reductions.decide_clique ci = Qgraph.Graph.has_clique g 3)
  | None -> Alcotest.fail "expected reduction instance"

let test_omq_grohe_construction () =
  (* Theorem 6.1 on the 2×2 grid query, k = 2 *)
  let q = Workload.grid_cq 2 2 in
  let dq = Cq.canonical_db q in
  let a = Instance.dom dq in
  match Grohe.find_minor_map ~k:2 dq a with
  | None -> Alcotest.fail "expected 2x1 grid minor"
  | Some mu ->
      let g = Qgraph.Graph.of_edges [ (0, 1); (1, 2); (2, 0) ] in
      let built = Grohe.omq_construction ~graph:g ~k:2 ~d:dq ~a ~mu in
      check "h0 is a homomorphism onto D" true
        (Grohe.h0_is_homomorphism built dq);
      check "2-clique criterion on triangle graph" true
        (Grohe.clique_criterion ~a built dq);
      let g0 = Qgraph.Graph.of_vertices_edges [ 0; 1 ] [] in
      let built0 = Grohe.omq_construction ~graph:g0 ~k:2 ~d:dq ~a ~mu in
      check "edgeless graph fails criterion" false
        (Grohe.clique_criterion ~a built0 dq)

(* ------------------------------------------------------------------ *)
(* OMQ → CQS reduction (Proposition 5.8)                                *)
(* ------------------------------------------------------------------ *)

let test_omq_to_cqs () =
  let sigma = Workload.manager_ontology () in
  let db = Instance.of_facts [ fact "Emp" [ "eve" ]; fact "Emp" [ "adam" ] ] in
  let queries =
    [
      bool_q [ atom "ReportsTo" [ v "x"; v "m" ]; atom "Managed" [ v "m" ] ];
      bool_q [ atom "ReportsTo" [ v "x"; v "x" ] ];
      bool_q [ atom "Managed" [ v "x" ] ];
    ]
  in
  List.iter
    (fun q ->
      let omq = Omq.full_data_schema ~ontology:sigma ~query:q in
      let d_star = Reductions.omq_to_cqs omq db in
      check "D* satisfies Σ (Lemma 6.8 item 1)" true
        (Tgd.satisfies_all d_star sigma);
      let open_world = (Omq_eval.certain ~max_level:6 omq db []).Omq_eval.holds in
      let closed_world = Ucq.holds d_star q in
      check "open-world = closed-world on D* (Lemma 6.8 item 2)" true
        (open_world = closed_world))
    queries

(* ------------------------------------------------------------------ *)
(* Suite                                                                *)
(* ------------------------------------------------------------------ *)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_tw_eval_correct ]

let () =
  Alcotest.run "guarded_core"
    [
      ( "tw-eval",
        [
          Alcotest.test_case "agrees with naive" `Quick test_tw_eval_agrees_with_naive;
          Alcotest.test_case "grid" `Quick test_tw_eval_grid;
          Alcotest.test_case "ground atoms" `Quick test_tw_eval_ground_and_constants;
        ] );
      ( "omq-eval",
        [
          Alcotest.test_case "baseline" `Quick test_omq_eval_baseline;
          Alcotest.test_case "fpt agrees" `Quick test_omq_eval_fpt_agrees;
          Alcotest.test_case "infinite chase" `Quick test_omq_eval_infinite_chase;
          Alcotest.test_case "data schema" `Quick test_omq_data_schema_enforced;
        ] );
      ( "cqs-eval",
        [
          Alcotest.test_case "promise + eval" `Quick test_cqs_eval_and_promise;
          Alcotest.test_case "semantic optimization" `Quick test_cqs_semantic_optimization;
        ] );
      ( "sigma-containment",
        [
          Alcotest.test_case "basic" `Quick test_sigma_containment;
          Alcotest.test_case "infinite chase" `Quick test_sigma_containment_infinite;
          Alcotest.test_case "minimize" `Quick test_sigma_minimize;
        ] );
      ( "finite-witness",
        [
          Alcotest.test_case "model + preservation" `Quick test_finite_witness_model;
          Alcotest.test_case "no spurious cycles" `Quick test_finite_witness_no_spurious_loop;
        ] );
      ( "meta-problem",
        [
          Alcotest.test_case "example 4.4" `Quick test_example_4_4;
          Alcotest.test_case "semantic UCQ treewidth" `Quick test_semantic_ucq_treewidth;
          Alcotest.test_case "full-schema OMQ" `Quick test_omq_equivalence_via_cqs;
          Alcotest.test_case "grounding approximation" `Quick test_grounding_approximation_small;
        ] );
      ("unraveling", [ Alcotest.test_case "guarded" `Quick test_guarded_unraveling ]);
      ( "grohe-reductions",
        [
          Alcotest.test_case "clique k=2" `Quick test_clique_reduction_k2;
          Alcotest.test_case "clique k=3" `Quick test_clique_reduction_k3;
          Alcotest.test_case "with constraints" `Quick test_clique_reduction_with_constraints;
          Alcotest.test_case "Thm 6.1 construction" `Quick test_omq_grohe_construction;
          Alcotest.test_case "OMQ→CQS" `Quick test_omq_to_cqs;
        ] );
      ("properties", qcheck_tests);
    ]
