open Relational.Term

type t = {
  mutable syms : const array;  (* id -> symbol *)
  mutable n : int;
  named : (string, int) Hashtbl.t;
  mutable nulls : int array;  (* null payload -> id + 1, 0 = absent *)
  odd : (const, int) Hashtbl.t;  (* nulls with out-of-range payloads *)
  mutable preds : string array;
  mutable npreds : int;
  pred_ids : (string, int) Hashtbl.t;
}

let dummy = Named ""

let create () =
  {
    syms = Array.make 16 dummy;
    n = 0;
    named = Hashtbl.create 64;
    nulls = Array.make 16 0;
    odd = Hashtbl.create 4;
    preds = Array.make 8 "";
    npreds = 0;
    pred_ids = Hashtbl.create 16;
  }

let size t = t.n

let append t c =
  if t.n = Array.length t.syms then begin
    let a = Array.make (2 * t.n) dummy in
    Array.blit t.syms 0 a 0 t.n;
    t.syms <- a
  end;
  t.syms.(t.n) <- c;
  t.n <- t.n + 1;
  t.n - 1

let null_slot t i =
  if i >= Array.length t.nulls then begin
    let len = ref (2 * Array.length t.nulls) in
    while i >= !len do
      len := 2 * !len
    done;
    let a = Array.make !len 0 in
    Array.blit t.nulls 0 a 0 (Array.length t.nulls);
    t.nulls <- a
  end

let intern t c =
  match c with
  | Named s -> (
      match Hashtbl.find_opt t.named s with
      | Some id -> id
      | None ->
          let id = append t c in
          Hashtbl.add t.named s id;
          id)
  | Null i when i >= 0 ->
      null_slot t i;
      let v = t.nulls.(i) in
      if v <> 0 then v - 1
      else begin
        let id = append t c in
        t.nulls.(i) <- id + 1;
        id
      end
  | Null _ -> (
      match Hashtbl.find_opt t.odd c with
      | Some id -> id
      | None ->
          let id = append t c in
          Hashtbl.add t.odd c id;
          id)

let find t c =
  match c with
  | Named s -> Hashtbl.find_opt t.named s
  | Null i when i >= 0 ->
      if i < Array.length t.nulls && t.nulls.(i) <> 0 then Some (t.nulls.(i) - 1) else None
  | Null _ -> Hashtbl.find_opt t.odd c

let find_int t c =
  match c with
  | Named s -> ( try Hashtbl.find t.named s with Not_found -> -1)
  | Null i when i >= 0 ->
      if i < Array.length t.nulls then t.nulls.(i) - 1 else -1
  | Null _ -> ( try Hashtbl.find t.odd c with Not_found -> -1)

let extern t id =
  if id < 0 || id >= t.n then invalid_arg "Symtab.extern";
  t.syms.(id)

let seed t cs = List.iter (fun c -> ignore (intern t c)) (List.sort_uniq compare_const cs)

let intern_pred t p =
  match Hashtbl.find_opt t.pred_ids p with
  | Some id -> id
  | None ->
      if t.npreds = Array.length t.preds then begin
        let a = Array.make (2 * t.npreds) "" in
        Array.blit t.preds 0 a 0 t.npreds;
        t.preds <- a
      end;
      t.preds.(t.npreds) <- p;
      t.npreds <- t.npreds + 1;
      Hashtbl.add t.pred_ids p (t.npreds - 1);
      t.npreds - 1

let find_pred t p = Hashtbl.find_opt t.pred_ids p
let find_pred_int t p = try Hashtbl.find t.pred_ids p with Not_found -> -1

let extern_pred t id =
  if id < 0 || id >= t.npreds then invalid_arg "Symtab.extern_pred";
  t.preds.(id)

let pred_count t = t.npreds

(* Overlays: provisional ids for shard [s] of [k] are -(j*k + s) - 1 for
   j = 0, 1, ... — strictly negative (disjoint from base ids) and
   interleaved by shard index (disjoint across shards for any k). *)

type overlay = {
  base : t;
  shard : int;
  shards : int;
  fresh : (const, int) Hashtbl.t;
  mutable news : const list;  (* reversed assignment order *)
  mutable count : int;
}

let overlay base ~shard ~shards =
  if shards < 1 || shard < 0 || shard >= shards then invalid_arg "Symtab.overlay";
  { base; shard; shards; fresh = Hashtbl.create 16; news = []; count = 0 }

let overlay_intern o c =
  match find o.base c with
  | Some id -> id
  | None -> (
      match Hashtbl.find_opt o.fresh c with
      | Some id -> id
      | None ->
          let id = -((o.count * o.shards) + o.shard) - 1 in
          Hashtbl.add o.fresh c id;
          o.news <- c :: o.news;
          o.count <- o.count + 1;
          id)

let overlay_extern o id =
  if id >= 0 then extern o.base id
  else
    let found = Hashtbl.fold (fun c i acc -> if i = id then Some c else acc) o.fresh None in
    match found with Some c -> c | None -> invalid_arg "Symtab.overlay_extern"

let overlay_news o = List.rev o.news

let reconcile t os =
  let news = Array.fold_left (fun acc o -> List.rev_append o.news acc) [] os in
  seed t news
