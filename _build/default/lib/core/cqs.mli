(** Constraint-query specifications [S = (Σ, q)] (§3.2): integrity
    constraints that input databases are promised to satisfy, plus a UCQ
    evaluated directly (closed world). *)

open Relational

type t

val make : constraints:Tgds.Tgd.t list -> query:Ucq.t -> t
val constraints : t -> Tgds.Tgd.t list
val query : t -> Ucq.t
val arity : t -> int

(** The schema [T] of the CQS. *)
val schema : t -> Schema.t

val norm : t -> int

(** [omq s] — the full-data-schema OMQ [omq(S)] (§5.1). *)
val omq : t -> Omq.t

(** The promise: [db ⊨ Σ]. *)
val admissible : t -> Instance.t -> bool

val in_guarded : t -> bool
val in_frontier_guarded : t -> bool
val in_fg : int -> t -> bool
val in_ucqk : int -> t -> bool
val pp : Format.formatter -> t -> unit
