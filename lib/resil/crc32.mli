(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    The WAL checksums every record line with this before it is fsync'd,
    so recovery can tell a torn tail from a complete record without
    trusting file lengths. Self-contained (no zlib binding): the
    256-entry table is computed once, lazily. *)

(** [string s] — the CRC-32 of the whole string, as a non-negative int
    in [0, 2^32). [string "123456789" = 0xCBF43926] (the standard check
    value). *)
val string : string -> int

(** Eight lowercase hex digits, zero-padded. *)
val to_hex : int -> string

(** [of_hex s] — inverse of {!to_hex}; [None] unless [s] is exactly
    eight hex digits. *)
val of_hex : string -> int option
