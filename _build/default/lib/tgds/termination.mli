(** Chase termination analysis: weak acyclicity ([22]) — no cycle of the
    position dependency graph passes through a special (existential)
    edge; then every chase sequence terminates. *)

type position = string * int
(** predicate name and argument index (0-based) *)

type edge = { src : position; dst : position; special : bool }

(** The dependency graph of a TGD set, as a deduplicated edge list. *)
val dependency_edges : Tgd.t list -> edge list

(** No cycle contains a special edge. *)
val weakly_acyclic : Tgd.t list -> bool

(** Sufficient static condition for chase termination: full TGDs or weak
    acyclicity. *)
val terminates_on_all_databases : Tgd.t list -> bool

val pp_position : Format.formatter -> position -> unit
val pp_edge : Format.formatter -> edge -> unit
