(** Hand-written lexer for the Datalog±-style surface language.

    Tokens: identifiers (lowercase-initial = constants/predicates,
    uppercase-initial = variables), integers, punctuation
    [( ) , . / :- ->], and end of input. [%] starts a line comment. *)

type token =
  | Ident of string  (** lowercase-initial identifier *)
  | Upper of string  (** uppercase-initial identifier (a variable) *)
  | Int of int
  | Lparen
  | Rparen
  | Comma
  | Period
  | Slash
  | Plus  (** "+" (mutation logs) *)
  | Minus  (** "-" not followed by ">" (mutation logs) *)
  | Arrow  (** "->" *)
  | Turnstile  (** ":-" *)
  | Eof

type lexeme = { token : token; line : int; col : int }

exception Error of string * int * int

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Upper s -> Fmt.pf ppf "variable %S" s
  | Int n -> Fmt.pf ppf "integer %d" n
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Comma -> Fmt.string ppf "','"
  | Period -> Fmt.string ppf "'.'"
  | Slash -> Fmt.string ppf "'/'"
  | Plus -> Fmt.string ppf "'+'"
  | Minus -> Fmt.string ppf "'-'"
  | Arrow -> Fmt.string ppf "'->'"
  | Turnstile -> Fmt.string ppf "':-'"
  | Eof -> Fmt.string ppf "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(** [tokenize src] — the lexemes of [src], ending with [Eof]. *)
let tokenize src =
  let n = String.length src in
  let lexemes = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit token = lexemes := { token; line = !line; col = !col } :: !lexemes in
  let advance () =
    if !i < n && src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '%' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '(' then (emit Lparen; advance ())
    else if c = ')' then (emit Rparen; advance ())
    else if c = ',' then (emit Comma; advance ())
    else if c = '.' then (emit Period; advance ())
    else if c = '/' then (emit Slash; advance ())
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then begin
      emit Arrow;
      advance ();
      advance ()
    end
    else if c = '+' then (emit Plus; advance ())
    else if c = '-' then (emit Minus; advance ())
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '-' then begin
      emit Turnstile;
      advance ();
      advance ()
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      let scol = !col in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        advance ()
      done;
      lexemes :=
        { token = Int (int_of_string (String.sub src start (!i - start)));
          line = !line; col = scol }
        :: !lexemes
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      let scol = !col in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let s = String.sub src start (!i - start) in
      let token =
        if (c >= 'A' && c <= 'Z') || c = '_' then Upper s else Ident s
      in
      lexemes := { token; line = !line; col = scol } :: !lexemes
    end
    else raise (Error (Printf.sprintf "unexpected character %C" c, !line, !col))
  done;
  List.rev ({ token = Eof; line = !line; col = !col } :: !lexemes)
