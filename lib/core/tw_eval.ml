(** Bounded-treewidth CQ evaluation (Proposition 2.1).

    Given a database [D], an n-ary [q ∈ CQ_k] and a candidate answer [c̄],
    decides [c̄ ∈ q(D)] in time [O(||D||^{k+1} · ||q||)]: the answer
    variables are pre-bound to [c̄] (the evaluation problem of §2 receives
    the candidate tuple), a width-k tree decomposition of the remaining
    (existential) variables is computed, each bag is materialized as a
    relation of at most [|dom|^{k+1}] tuples, and a bottom-up semijoin
    sweep (Yannakakis) decides satisfiability. *)

open Relational
open Relational.Term
module ISet = Qgraph.Graph.ISet
module IMap = Qgraph.Graph.IMap
module Tree_decomposition = Qgraph.Tree_decomposition

(* Decompositions fall back to the heuristic witness when the Gaifman
   graph is too large for exact search; the registry records how often. *)
let metrics = Obs.Metrics.create ()
let c_exact_fallbacks = Obs.Metrics.counter metrics "tw_eval.exact_fallbacks"

(* Assign every atom to a bag containing all its variables (exists because
   an atom's variables form a clique of the Gaifman graph, and every clique
   is contained in some bag). *)
let assign_atoms td var_index atoms =
  let bag_of_atom a =
    let vs = Atom.vars a in
    let ids =
      VarSet.fold (fun x acc -> ISet.add (Hashtbl.find var_index x) acc) vs ISet.empty
    in
    IMap.fold
      (fun node bag acc ->
        match acc with
        | Some _ -> acc
        | None -> if ISet.subset ids bag then Some node else None)
      (Tree_decomposition.bags td) None
  in
  List.map
    (fun a ->
      match bag_of_atom a with
      | Some node -> (a, node)
      | None -> invalid_arg "Tw_eval: atom not covered by any bag")
    atoms

(* Do two bindings agree on their common variables? *)
let agree b1 b2 =
  VarMap.for_all
    (fun x c ->
      match VarMap.find_opt x b2 with Some d -> equal_const c d | None -> true)
    b1

(* Natural join of two binding lists (hash-grouped on the shared
   variables). *)
let join r1 r2 =
  match (r1, r2) with
  | [], _ | _, [] -> []
  | b1 :: _, b2 :: _ ->
      let shared =
        VarMap.fold
          (fun x _ acc -> if VarMap.mem x b2 then x :: acc else acc)
          b1 []
      in
      let key b = List.map (fun x -> VarMap.find_opt x b) shared in
      let index = Hashtbl.create (List.length r2) in
      List.iter (fun b -> Hashtbl.add index (key b) b) r2;
      List.concat_map
        (fun b1 ->
          Hashtbl.find_all index (key b1)
          |> List.filter_map (fun b2 ->
                 if agree b1 b2 then
                   Some (VarMap.union (fun _ a _ -> Some a) b1 b2)
                 else None))
        r1

(* Project a binding list onto a variable set, deduplicated. *)
let project vars r =
  List.map (fun b -> VarMap.filter (fun x _ -> VarSet.mem x vars) b) r
  |> List.sort_uniq (VarMap.compare compare_const)

(** [entails db q c̄] — [c̄ ∈ q(D)] by dynamic programming over a tree
    decomposition of the existential variables of [q]. Works for any CQ;
    the cost is exponential only in the width of the decomposition
    found. *)
let entails db (q : Cq.t) tuple =
  if List.length tuple <> Cq.arity q then false
  else
    (* bind the answer variables *)
    let subst =
      List.fold_left2
        (fun acc x c -> VarMap.add x (Const c) acc)
        VarMap.empty (Cq.answer q) tuple
    in
    let atoms = List.map (Atom.apply subst) (Cq.atoms q) in
    let ground, open_atoms =
      List.partition (fun a -> VarSet.is_empty (Atom.vars a)) atoms
    in
    if not (List.for_all (fun a -> Instance.mem (Fact.of_atom a) db) ground) then
      false
    else if open_atoms = [] then true
    else begin
      (* Gaifman graph of the remaining variables *)
      let vars =
        List.fold_left
          (fun acc a -> VarSet.union (Atom.vars a) acc)
          VarSet.empty open_atoms
      in
      let var_list = VarSet.elements vars in
      let var_index = Hashtbl.create 16 in
      List.iteri (fun i x -> Hashtbl.replace var_index x i) var_list;
      let name = Array.of_list var_list in
      let g = ref Qgraph.Graph.empty in
      List.iteri (fun i _ -> g := Qgraph.Graph.add_vertex !g i) var_list;
      List.iter
        (fun a ->
          let ids = VarSet.elements (Atom.vars a) |> List.map (Hashtbl.find var_index) in
          let rec pairs = function
            | [] -> ()
            | x :: rest ->
                List.iter (fun y -> g := Qgraph.Graph.add_edge !g x y) rest;
                pairs rest
          in
          pairs ids)
        open_atoms;
      let td =
        match Qgraph.Treewidth.exact_decomposition_opt !g with
        | Some (_, td) -> td
        | None ->
            (* > 62 existential variables: exact search is infeasible — use
               the heuristic witness (sound; only the width bound degrades)
               rather than propagating Too_large to query evaluation. *)
            Obs.Metrics.incr c_exact_fallbacks;
            snd (Qgraph.Treewidth.upper_bound !g)
      in
      let assignment = assign_atoms td var_index open_atoms in
      let bag_vars node =
        ISet.fold
          (fun i acc -> VarSet.add name.(i) acc)
          (IMap.find node (Tree_decomposition.bags td))
          VarSet.empty
      in
      (* bottom-up join with projection to separators (Yannakakis) *)
      let sk = Tree_decomposition.skeleton td in
      let visited = Hashtbl.create 16 in
      let rec solve node =
        Hashtbl.replace visited node ();
        let children =
          ISet.elements (Qgraph.Graph.neighbors sk node)
          |> List.filter (fun n -> not (Hashtbl.mem visited n))
        in
        let base =
          Homomorphism.all
            (List.filter_map
               (fun (a, n) -> if n = node then Some a else None)
               assignment)
            db
        in
        List.fold_left
          (fun rel child ->
            match solve child with
            | [] -> []
            | child_rel ->
                let sep = VarSet.inter (bag_vars node) (bag_vars child) in
                join rel (project sep child_rel))
          base children
      in
      match IMap.min_binding_opt (Tree_decomposition.bags td) with
      | None -> true
      | Some (root, _) -> solve root <> []
    end

(** [holds db q] — Boolean variant. *)
let holds db q = entails db q []

(** [entails_ucq db u c̄] — UCQ variant (each disjunct independently). *)
let entails_ucq db (u : Ucq.t) tuple =
  List.exists (fun q -> entails db q tuple) (Ucq.disjuncts u)

(** [answers db q] — enumerate [q(D)] by checking every candidate tuple
    (cost [|dom|^arity] candidate checks; meant for small arities). *)
let answers db q =
  let dom = ConstSet.elements (Instance.dom db) in
  let rec tuples n =
    if n = 0 then [ [] ]
    else List.concat_map (fun t -> List.map (fun c -> c :: t) dom) (tuples (n - 1))
  in
  List.filter (entails db q) (tuples (Cq.arity q))
