(** Pretty-printer rendering programs back into the surface syntax
    (round-trips through {!Parser.parse}). *)

open Relational

val pp_term : Format.formatter -> Term.t -> unit
val pp_atom : Format.formatter -> Atom.t -> unit
val pp_atoms : Format.formatter -> Atom.t list -> unit
val pp_tgd : Format.formatter -> Tgds.Tgd.t -> unit
val pp_fact : Format.formatter -> Fact.t -> unit
val pp_query : string -> Format.formatter -> Cq.t -> unit
val pp_program : Format.formatter -> Parser.program -> unit
