lib/relational/cq_core.ml: ConstSet Containment Cq Homomorphism List Option Term Ucq VarMap VarSet
