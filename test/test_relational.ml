(* Tests for the relational substrate: instances, homomorphisms, CQs/UCQs,
   containment, cores. *)

open Relational
open Relational.Term

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Helpers *)
let v = Term.var
let c s = Term.const s
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)

let db_path n =
  (* E(a0,a1), ..., E(a_{n-1},a_n) *)
  Instance.of_facts
    (List.init n (fun i ->
         fact "E" [ "a" ^ string_of_int i; "a" ^ string_of_int (i + 1) ]))

(* ------------------------------------------------------------------ *)
(* Instances                                                            *)
(* ------------------------------------------------------------------ *)

let test_instance_basics () =
  let i = Instance.of_facts [ fact "R" [ "a"; "b" ]; fact "S" [ "b" ] ] in
  check_int "size" 2 (Instance.size i);
  check "mem" true (Instance.mem (fact "R" [ "a"; "b" ]) i);
  check "not mem" false (Instance.mem (fact "R" [ "b"; "a" ]) i);
  check_int "dom" 2 (ConstSet.cardinal (Instance.dom i));
  check "dedup" true
    (Instance.equal i (Instance.add_fact (fact "R" [ "a"; "b" ]) i))

let test_instance_restrict () =
  let i =
    Instance.of_facts
      [ fact "R" [ "a"; "b" ]; fact "R" [ "b"; "c" ]; fact "S" [ "a" ] ]
  in
  let r = Instance.restrict i (ConstSet.of_list [ Named "a"; Named "b" ]) in
  check_int "restricted size" 2 (Instance.size r);
  check "keeps R(a,b)" true (Instance.mem (fact "R" [ "a"; "b" ]) r);
  check "drops R(b,c)" false (Instance.mem (fact "R" [ "b"; "c" ]) r)

let test_instance_gaifman () =
  let i = Instance.of_facts [ fact "R" [ "a"; "b" ]; fact "R" [ "b"; "c" ] ] in
  let g, _ = Instance.gaifman i in
  check_int "gaifman vertices" 3 (Qgraph.Graph.num_vertices g);
  check_int "gaifman edges" 2 (Qgraph.Graph.num_edges g);
  check_int "path instance tw" 1 (Instance.treewidth i)

let test_isolated_and_guarded () =
  let i =
    Instance.of_facts [ fact "R" [ "a"; "b"; "c" ]; fact "S" [ "a"; "b" ] ]
  in
  check "c isolated" true (Instance.isolated i (Named "c"));
  check "a not isolated" false (Instance.isolated i (Named "a"));
  let mgs = Instance.maximal_guarded_sets i in
  check_int "one maximal guarded set" 1 (List.length mgs);
  check "it is {a,b,c}" true
    (ConstSet.equal (List.hd mgs) (ConstSet.of_list [ Named "a"; Named "b"; Named "c" ]))

(* ------------------------------------------------------------------ *)
(* Homomorphisms                                                        *)
(* ------------------------------------------------------------------ *)

let test_hom_basic () =
  let i = Instance.of_facts [ fact "E" [ "a"; "b" ]; fact "E" [ "b"; "c" ] ] in
  let pattern = [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ] in
  check "path pattern matches" true (Homomorphism.exists pattern i);
  check_int "one hom" 1 (List.length (Homomorphism.all pattern i));
  let triangle =
    [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ]; atom "E" [ v "z"; v "x" ] ]
  in
  check "no triangle" false (Homomorphism.exists triangle i)

let test_hom_repeated_vars_and_consts () =
  let i = Instance.of_facts [ fact "R" [ "a"; "a" ]; fact "R" [ "a"; "b" ] ] in
  check "loop var" true (Homomorphism.exists [ atom "R" [ v "x"; v "x" ] ] i);
  check "const positions" true
    (Homomorphism.exists [ atom "R" [ c "a"; v "y" ] ] i);
  check "no match" false (Homomorphism.exists [ atom "R" [ c "b"; v "y" ] ] i)

let test_hom_injective () =
  let i = Instance.of_facts [ fact "E" [ "a"; "a" ] ] in
  let pattern = [ atom "E" [ v "x"; v "y" ] ] in
  check "non-injective ok" true (Homomorphism.exists pattern i);
  check "injective fails" false (Homomorphism.exists ~injective:true pattern i)

let test_hom_init () =
  let i = Instance.of_facts [ fact "E" [ "a"; "b" ]; fact "E" [ "c"; "d" ] ] in
  let init = VarMap.singleton "x" (Named "c") in
  let b = Homomorphism.find ~init [ atom "E" [ v "x"; v "y" ] ] i in
  match b with
  | Some b -> check "y bound to d" true (equal_const (VarMap.find "y" b) (Named "d"))
  | None -> Alcotest.fail "expected a homomorphism"

let test_hom_between_instances () =
  let src = Instance.of_facts [ fact "E" [ "x"; "y" ]; fact "E" [ "y"; "z" ] ] in
  let dst = Instance.of_facts [ fact "E" [ "a"; "a" ] ] in
  check "path maps to loop" true (Homomorphism.maps_to src dst);
  check "loop does not map to path" false (Homomorphism.maps_to dst (db_path 3));
  (match Homomorphism.find_between src dst with
  | Some h -> check "verified" true (Homomorphism.verify_between src dst h)
  | None -> Alcotest.fail "expected instance hom");
  (* fixed constants *)
  let fixed = ConstMap.singleton (Named "x") (Named "a") in
  check "fixed respected" true (Homomorphism.maps_to ~fixed src dst)

let test_hom_empty_pattern () =
  check "empty pattern holds" true (Homomorphism.exists [] (db_path 1))

(* Regression: the const→var encoding of pattern_of_instance used to
   intern every source constant in a global, never-cleared table, so a
   long-running process issuing maps_to checks against ever-fresh
   constants grew the live heap with the call count. The numbering is now
   local to each call: repeated checks must leave no residue. *)
let test_maps_to_memory_stable () =
  let dst = Instance.of_facts [ fact "E" [ "a"; "b" ] ] in
  let src i =
    Instance.of_facts
      [ fact "E" [ "x" ^ string_of_int i; "y" ^ string_of_int i ] ]
  in
  let run n0 n1 =
    for i = n0 to n1 - 1 do
      ignore (Homomorphism.maps_to (src i) dst)
    done
  in
  (* warm-up fills any one-time caches *)
  run 0 1000;
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  run 1000 5000;
  Gc.compact ();
  let live1 = (Gc.stat ()).Gc.live_words in
  (* 4000 further calls see 8000 fresh constants; a leaked const→var
     table would retain tens of thousands of words *)
  check "maps_to leaves no per-call residue" true (live1 - live0 < 8_000)

(* ------------------------------------------------------------------ *)
(* CQs                                                                  *)
(* ------------------------------------------------------------------ *)

let test_cq_eval () =
  let q =
    Cq.make ~answer:[ "x" ] [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ]
  in
  let db = db_path 3 in
  let ans = Cq.answers db q in
  check_int "two answers" 2 (List.length ans);
  check "a0 answer" true (Cq.entails db q [ Named "a0" ]);
  check "a2 not answer" false (Cq.entails db q [ Named "a2" ])

let test_cq_boolean () =
  let q = Cq.make [ atom "E" [ v "x"; v "x" ] ] in
  check "no loop in path" false (Cq.holds (db_path 3) q);
  let loop = Instance.of_facts [ fact "E" [ "a"; "a" ] ] in
  check "loop holds" true (Cq.holds loop q)

let test_cq_canonical_db () =
  let q = Cq.make ~answer:[ "x" ] [ atom "E" [ v "x"; v "y" ] ] in
  let db = Cq.canonical_db q in
  check_int "canonical size" 1 (Instance.size db);
  check "frozen fact" true
    (Instance.mem (Fact.make "E" [ Cq.freeze "x"; Cq.freeze "y" ]) db);
  (* round trip *)
  let q' = Cq.of_instance ~answer:[ Cq.freeze "x" ] db in
  check "round trip equivalent" true (Containment.cq_equivalent q q')

let test_cq_treewidth_paper_convention () =
  (* single-atom CQ: existential subgraph is a clique of size arity *)
  let q3 = Cq.make [ atom "T" [ v "x"; v "y"; v "z" ] ] in
  check_int "ternary atom tw" 2 (Cq.treewidth q3);
  (* all variables free: empty existential subgraph -> treewidth 1 *)
  let qfree = Cq.make ~answer:[ "x"; "y"; "z" ] [ atom "T" [ v "x"; v "y"; v "z" ] ] in
  check_int "free vars tw is 1" 1 (Cq.treewidth qfree);
  (* the 3x3 grid query is treewidth 3 *)
  let grid_q =
    let at i j = Printf.sprintf "x%d%d" i j in
    let atoms =
      List.concat_map
        (fun i ->
          List.concat_map
            (fun j ->
              (if i < 2 then [ atom "X" [ v (at i j); v (at (i + 1) j) ] ] else [])
              @ if j < 2 then [ atom "Y" [ v (at i j); v (at i (j + 1)) ] ] else [])
            [ 0; 1; 2 ])
        [ 0; 1; 2 ]
    in
    Cq.make atoms
  in
  check_int "3x3 grid query tw" 3 (Cq.treewidth grid_q);
  check "in CQ3" true (Cq.in_cqk 3 grid_q);
  check "not in CQ2" false (Cq.in_cqk 2 grid_q)

let test_cq_contractions () =
  let q = Cq.make [ atom "E" [ v "x"; v "y" ] ] in
  let cs = Cq.contractions q in
  (* E(x,y) and E(x,x) *)
  check_int "two contractions" 2 (List.length cs);
  check "loop among them" true
    (List.exists (fun q' -> Cq.holds (Instance.of_facts [ fact "E" [ "a"; "a" ] ]) q' && List.length (Cq.atoms q') = 1) cs)

let test_cq_contraction_answer_vars () =
  let q = Cq.make ~answer:[ "x"; "y" ] [ atom "E" [ v "x"; v "y" ] ] in
  check "answer vars cannot merge" true (Cq.contract_pair q "x" "y" = None);
  let q2 = Cq.make ~answer:[ "x" ] [ atom "E" [ v "x"; v "y" ] ] in
  match Cq.contract_pair q2 "x" "y" with
  | Some q' ->
      check "answer var survives" true (Cq.answer q' = [ "x" ]);
      check_int "one var" 1 (VarSet.cardinal (Cq.vars q'))
  | None -> Alcotest.fail "expected contraction"

let test_v_connected_components () =
  (* q = E(x,y), E(y,z), F(u,w) with V = {y}: components {x}, {z}, {u,w} *)
  let q =
    Cq.make
      [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ]; atom "F" [ v "u"; v "w" ] ]
  in
  let vset = VarSet.singleton "y" in
  let comps = Cq.v_connected_components q vset in
  check_int "three components" 3 (List.length comps);
  check "q[V] is all atoms" true (List.length (Cq.drop q vset) = 3);
  check "q|V empty" true (Cq.restrict_to q vset = [])

(* ------------------------------------------------------------------ *)
(* UCQ                                                                  *)
(* ------------------------------------------------------------------ *)

let test_ucq_eval () =
  let q1 = Cq.make ~answer:[ "x" ] [ atom "R" [ v "x" ] ] in
  let q2 = Cq.make ~answer:[ "x" ] [ atom "S" [ v "x" ] ] in
  let u = Ucq.make [ q1; q2 ] in
  let db = Instance.of_facts [ fact "R" [ "a" ]; fact "S" [ "b" ] ] in
  check_int "union answers" 2 (List.length (Ucq.answers db u));
  check "arity mismatch rejected" true
    (try
       ignore (Ucq.make [ q1; Cq.make [ atom "R" [ v "x" ] ] ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Containment and cores                                                *)
(* ------------------------------------------------------------------ *)

let test_containment () =
  let path2 =
    Cq.make ~answer:[ "x" ] [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "y"; v "z" ] ]
  in
  let path1 = Cq.make ~answer:[ "x" ] [ atom "E" [ v "x"; v "y" ] ] in
  check "path2 ⊆ path1" true (Containment.cq_contained path2 path1);
  check "path1 ⊄ path2" false (Containment.cq_contained path1 path2);
  check "not equivalent" false (Containment.cq_equivalent path1 path2)

let test_core_grid_example () =
  (* Example 4.4 of the paper: q is a core of treewidth 2 equivalent to
     nothing smaller without the ontology. *)
  let q =
    Cq.make
      [
        atom "P" [ v "x2"; v "x1" ];
        atom "P" [ v "x4"; v "x1" ];
        atom "P" [ v "x2"; v "x3" ];
        atom "P" [ v "x4"; v "x3" ];
        atom "R1" [ v "x1" ];
        atom "R2" [ v "x2" ];
        atom "R3" [ v "x3" ];
        atom "R4" [ v "x4" ];
      ]
  in
  check "example 4.4 query is a core" true (Cq_core.is_core q);
  check_int "its treewidth is 2" 2 (Cq.treewidth q)

let test_core_collapses () =
  (* E(x,y) ∧ E(x,z): z can retract onto y *)
  let q = Cq.make [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "x"; v "z" ] ] in
  let core = Cq_core.core q in
  check_int "core has one atom" 1 (List.length (Cq.atoms core));
  check "equivalent to original" true (Containment.cq_equivalent q core)

let test_core_fixes_answers () =
  (* with y an answer variable, E(x,y) ∧ E(x,z) retracts only z *)
  let q = Cq.make ~answer:[ "y" ] [ atom "E" [ v "x"; v "y" ]; atom "E" [ v "x"; v "z" ] ] in
  let core = Cq_core.core q in
  check_int "core still one atom" 1 (List.length (Cq.atoms core));
  check "y kept" true (List.mem "y" (Cq.answer core));
  check "equivalent" true (Containment.cq_equivalent q core)

let test_semantic_treewidth () =
  (* 2x2 grid query with a diagonal fold: contractible to a path.
     C4 as a query: X(x1,x2), X(x3,x2)?? — use the 4-cycle which is
     equivalent to its core = one edge when relations allow folding:
     E(x1,x2), E(x3,x2), E(x3,x4), E(x1,x4) folds onto E(x1,x2). *)
  let q =
    Cq.make
      [
        atom "E" [ v "x1"; v "x2" ];
        atom "E" [ v "x3"; v "x2" ];
        atom "E" [ v "x3"; v "x4" ];
        atom "E" [ v "x1"; v "x4" ];
      ]
  in
  let core = Cq_core.core q in
  check_int "C4 core is one edge" 1 (List.length (Cq.atoms core));
  check_int "semantic treewidth 1" 1 (Cq_core.semantic_treewidth q);
  check "in CQ≡1" true (Cq_core.in_cqk_equiv 1 q)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                    *)
(* ------------------------------------------------------------------ *)

(* Random small CQs over a fixed binary/unary schema. *)
let gen_cq =
  QCheck.Gen.(
    let var_names = [ "x"; "y"; "z"; "u"; "w" ] in
    let gen_var = map (List.nth var_names) (int_range 0 4) in
    let gen_atom =
      let* p = int_range 0 2 in
      match p with
      | 0 ->
          let* a = gen_var and* b = gen_var in
          return (atom "E" [ v a; v b ])
      | 1 ->
          let* a = gen_var in
          return (atom "R" [ v a ])
      | _ ->
          let* a = gen_var and* b = gen_var in
          return (atom "F" [ v a; v b ])
    in
    let* atoms = list_size (int_range 1 5) gen_atom in
    return (Cq.make atoms))

let arb_cq = QCheck.make ~print:(Fmt.str "%a" Cq.pp) gen_cq

let gen_db =
  QCheck.Gen.(
    let consts = [ "a"; "b"; "c" ] in
    let gen_c = map (List.nth consts) (int_range 0 2) in
    let gen_fact =
      let* p = int_range 0 2 in
      match p with
      | 0 ->
          let* a = gen_c and* b = gen_c in
          return (fact "E" [ a; b ])
      | 1 ->
          let* a = gen_c in
          return (fact "R" [ a ])
      | _ ->
          let* a = gen_c and* b = gen_c in
          return (fact "F" [ a; b ])
    in
    let* facts = list_size (int_range 0 6) gen_fact in
    return (Instance.of_facts facts))

let arb_cq_db =
  QCheck.make
    ~print:(fun (q, db) -> Fmt.str "%a over %a" Cq.pp q Instance.pp db)
    QCheck.Gen.(pair gen_cq gen_db)

let prop_core_equivalent =
  QCheck.Test.make ~name:"core is equivalent to the query" ~count:100 arb_cq
    (fun q -> Containment.cq_equivalent q (Cq_core.core q))

let prop_core_is_core =
  QCheck.Test.make ~name:"core of core is itself" ~count:100 arb_cq (fun q ->
      Cq_core.is_core (Cq_core.core q))

let prop_eval_agrees_with_core =
  QCheck.Test.make ~name:"evaluation invariant under coring" ~count:100
    arb_cq_db (fun (q, db) -> Cq.holds db q = Cq.holds db (Cq_core.core q))

let prop_containment_sound =
  QCheck.Test.make ~name:"q ⊆ q' implies answers(q) ⊆ answers(q')" ~count:100
    (QCheck.pair arb_cq_db arb_cq)
    (fun ((q, db), q') ->
      if Containment.cq_contained q q' then
        (not (Cq.holds db q)) || Cq.holds db q'
      else true)

let prop_contraction_maps_home =
  QCheck.Test.make ~name:"every contraction maps onto the original canon db"
    ~count:60 arb_cq (fun q ->
      List.for_all
        (fun qc -> Containment.cq_contained qc q)
        (Cq.contractions q))

let prop_canonical_db_self_entails =
  QCheck.Test.make ~name:"D[q] ⊨ q" ~count:100 arb_cq (fun q ->
      Cq.holds (Cq.canonical_db q) q)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_core_equivalent;
      prop_core_is_core;
      prop_eval_agrees_with_core;
      prop_containment_sound;
      prop_contraction_maps_home;
      prop_canonical_db_self_entails;
    ]

let () =
  Alcotest.run "relational"
    [
      ( "instance",
        [
          Alcotest.test_case "basics" `Quick test_instance_basics;
          Alcotest.test_case "restrict" `Quick test_instance_restrict;
          Alcotest.test_case "gaifman" `Quick test_instance_gaifman;
          Alcotest.test_case "isolated/guarded" `Quick test_isolated_and_guarded;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "basic" `Quick test_hom_basic;
          Alcotest.test_case "repeated vars/consts" `Quick test_hom_repeated_vars_and_consts;
          Alcotest.test_case "injective" `Quick test_hom_injective;
          Alcotest.test_case "init binding" `Quick test_hom_init;
          Alcotest.test_case "between instances" `Quick test_hom_between_instances;
          Alcotest.test_case "empty pattern" `Quick test_hom_empty_pattern;
          Alcotest.test_case "maps_to memory stable" `Quick
            test_maps_to_memory_stable;
        ] );
      ( "cq",
        [
          Alcotest.test_case "evaluation" `Quick test_cq_eval;
          Alcotest.test_case "boolean" `Quick test_cq_boolean;
          Alcotest.test_case "canonical db" `Quick test_cq_canonical_db;
          Alcotest.test_case "treewidth conventions" `Quick test_cq_treewidth_paper_convention;
          Alcotest.test_case "contractions" `Quick test_cq_contractions;
          Alcotest.test_case "contraction answers" `Quick test_cq_contraction_answer_vars;
          Alcotest.test_case "[V]-components" `Quick test_v_connected_components;
        ] );
      ("ucq", [ Alcotest.test_case "evaluation" `Quick test_ucq_eval ]);
      ( "containment-core",
        [
          Alcotest.test_case "containment" `Quick test_containment;
          Alcotest.test_case "example 4.4 core" `Quick test_core_grid_example;
          Alcotest.test_case "core collapses" `Quick test_core_collapses;
          Alcotest.test_case "core fixes answers" `Quick test_core_fixes_answers;
          Alcotest.test_case "semantic treewidth" `Quick test_semantic_treewidth;
        ] );
      ("properties", qcheck_tests);
    ]
