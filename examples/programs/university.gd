% University ontology: guarded TGDs as ontology axioms (open world).
prof(X) -> teaches(X,C).
teaches(X,C) -> course(C).
course(C) -> offeredBy(C,D).
offeredBy(C,D) -> dept(D).
teaches(X,C) -> faculty(X).

% Incomplete data
prof(ada).
course(logic).

% Queries
q() :- dept(D).
who(X) :- faculty(X).
