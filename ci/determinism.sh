#!/bin/sh
# Parallel-engine determinism check against committed golden outputs: for
# every example program, a chase must produce byte-identical exit code,
# stdout, checkpoint, and stats (up to the timing tail) for every engine
# of the indexed family — `--engine parallel --domains 1/2/4/8` and
# `--engine indexed` — *and* match the goldens under ci/golden/, so a
# representation change in the fact store is caught as drift even when it
# is self-consistent across engines. The checkpoint's engine field names
# the engine family by design; it is normalised before comparison.
#
# Run from the repository root:    sh ci/determinism.sh
# Refresh the goldens (after an *intentional* observable change,
# reviewed like any other golden): GOLDEN_REGEN=1 sh ci/determinism.sh
set -eu

cd "$(dirname "$0")/.."

CLI=_build/default/bin/guarded_cli.exe
[ -x "$CLI" ] || { echo "determinism: build first (dune build)"; exit 1; }

# Content-hash short-circuit: the golden matrix depends only on the
# non-server sources, the example programs, the committed goldens, and
# this script — lib/server sits downstream of the frozen snapshot and
# cannot move a chase/answers/serve byte. When none of those changed
# since the last clean pass, the full 13-program x 5-engine sweep is a
# no-op: skip it. DETERMINISM_FORCE=1 reruns unconditionally.
STAMP=_build/ci-determinism.stamp
fingerprint() {
  {
    find lib bin examples ci/golden -type f ! -path "lib/server/*" \
      -exec cksum {} +
    cksum ci/determinism.sh
  } | sort | cksum
}
if [ -z "${DETERMINISM_FORCE:-}" ] && [ -z "${GOLDEN_REGEN:-}" ] \
  && [ -f "$STAMP" ] && [ "$(fingerprint)" = "$(cat "$STAMP")" ]; then
  echo "determinism: inputs unchanged since last clean pass, skipping (DETERMINISM_FORCE=1 to override)"
  exit 0
fi

GOLD=ci/golden
REGEN=${GOLDEN_REGEN:-}
[ -z "$REGEN" ] || mkdir -p "$GOLD"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# The engine family is an implementation detail of the run, not of the
# chase state; checkpoints agree on everything else.
norm_ck() {
  sed -E 's/"engine":"(indexed|parallel)"/"engine":"FAMILY"/' "$1"
}

# expect <got> <golden-name> <what> — byte comparison against a golden
expect() {
  if [ -n "$REGEN" ] && [ ! -f "$GOLD/$2" ]; then
    cp "$1" "$GOLD/$2"
  fi
  cmp -s "$1" "$GOLD/$2" || {
    echo "determinism: $3 drifted from golden $2"
    exit 1
  }
}

# run <tag> <program> <engine flags...> — capture every observable output
run() {
  tag=$1
  file=$2
  shift 2
  set +e
  "$CLI" chase "$file" --max-level 4 --budget-facts 200 "$@" \
    --checkpoint "$TMP/$tag.ck" --stats "$TMP/$tag.stats" \
    > "$TMP/$tag.out" 2> "$TMP/$tag.err"
  echo $? > "$TMP/$tag.code"
  set -e
  # programs that fail to parse produce neither artifact; normalise so
  # the byte comparison still applies (empty vs empty)
  if [ -f "$TMP/$tag.stats" ]; then
    sed -E 's/,"histograms":.*$//' "$TMP/$tag.stats" > "$TMP/$tag.cut"
  else
    : > "$TMP/$tag.cut"
  fi
  if [ -f "$TMP/$tag.ck" ]; then
    norm_ck "$TMP/$tag.ck" > "$TMP/$tag.nck"
  else
    : > "$TMP/$tag.nck"
  fi
}

compared=0
for prog in examples/programs/*.gd; do
  base=$(basename "$prog" .gd)
  run "$base.seq" "$prog" --engine indexed
  for aspect in code out cut nck; do
    expect "$TMP/$base.seq.$aspect" "$base.$aspect" "$base: indexed $aspect"
  done
  # shard-count sweep: every domain count must reproduce the golden
  for d in 1 2 4 8; do
    run "$base.d$d" "$prog" --engine parallel --domains "$d"
    for aspect in code out cut nck; do
      expect "$TMP/$base.d$d.$aspect" "$base.$aspect" \
        "$base: parallel --domains $d $aspect"
    done
  done
  if [ "$(cat "$TMP/$base.seq.code")" = 0 ]; then
    compared=$((compared + 1))
  fi
done

# a sanity floor: the check is vacuous if nothing chased cleanly
[ "$compared" -ge 5 ] || {
  echo "determinism: only $compared programs chased cleanly"
  exit 1
}
echo "determinism: OK ($compared programs match goldens across --domains 1/2/4/8 and indexed)"

# Answer enumeration: the `answers` command prints a canonical sorted
# set, so stdout and exit code must be byte-identical across the
# parallel engine's domain counts and the sequential indexed engine —
# and match the committed goldens.
run_answers() {
  tag=$1
  file=$2
  query=$3
  shift 3
  set +e
  "$CLI" answers "$file" --query "$query" --max-level 4 "$@" \
    > "$TMP/$tag.out" 2> "$TMP/$tag.err"
  echo $? > "$TMP/$tag.code"
  set -e
}

answers_ok=0
for spec in prog_eval:q prog_eval:who prog_fpt:who prog_cqs:q university:q; do
  prog=examples/programs/${spec%%:*}.gd
  query=${spec##*:}
  [ -f "$prog" ] || continue
  base="answers.${spec%%:*}.$query"
  run_answers "$base.seq" "$prog" "$query" --engine indexed
  for aspect in code out; do
    expect "$TMP/$base.seq.$aspect" "$base.$aspect" "$base: indexed $aspect"
  done
  for d in 1 4; do
    run_answers "$base.d$d" "$prog" "$query" --engine parallel --domains "$d"
    for aspect in code out; do
      expect "$TMP/$base.d$d.$aspect" "$base.$aspect" \
        "$base: parallel --domains $d $aspect"
    done
  done
  if [ "$(cat "$TMP/$base.seq.code")" = 0 ]; then
    answers_ok=$((answers_ok + 1))
  fi
done
[ "$answers_ok" -ge 3 ] || {
  echo "determinism: only $answers_ok answer runs completed cleanly"
  exit 1
}
echo "determinism: OK ($answers_ok answer sets match goldens across engines)"

# Incremental maintenance: `serve` applies a mutation log to a maintained
# store. Stdout, stats (up to the timing tail) and the checkpoint must be
# byte-identical across the engine family and domain counts — including
# the checkpoint, because a maintained store always checkpoints as the
# indexed engine regardless of how the initial chase was executed.
run_serve() {
  tag=$1
  shift
  set +e
  "$CLI" serve examples/programs/university.gd \
    --log examples/programs/university.mut "$@" \
    --checkpoint "$TMP/$tag.ck" --stats "$TMP/$tag.stats" \
    > "$TMP/$tag.out" 2> "$TMP/$tag.err"
  echo $? > "$TMP/$tag.code"
  set -e
  if [ -f "$TMP/$tag.stats" ]; then
    sed -E 's/,"histograms":.*$//' "$TMP/$tag.stats" > "$TMP/$tag.cut"
  else
    : > "$TMP/$tag.cut"
  fi
  [ -f "$TMP/$tag.ck" ] || : > "$TMP/$tag.ck"
}

run_serve serve.seq --engine indexed
[ "$(cat "$TMP/serve.seq.code")" = 0 ] || {
  echo "determinism: serve failed (exit $(cat "$TMP/serve.seq.code"))"
  exit 1
}
for aspect in code out ck cut; do
  expect "$TMP/serve.seq.$aspect" "serve.$aspect" "serve: indexed $aspect"
done
for d in 1 4; do
  run_serve "serve.d$d" --engine parallel --domains "$d"
  for aspect in code out ck cut; do
    expect "$TMP/serve.d$d.$aspect" "serve.$aspect" \
      "serve: parallel --domains $d $aspect"
  done
done
echo "determinism: OK (serve matches goldens across engines and domains)"

# A recovered store must pass the same golden sweep: crash the WAL-backed
# serve with an injected fsync fault (torn final record), recover, and
# compare the recovered checkpoint byte-for-byte against the serve golden
# plus the recovered fact listing against the golden's. Stdout is not
# compared whole — a recovered run does not re-print mutations the WAL
# already applied, by design.
rm -rf "$TMP/serve.wal"
set +e
"$CLI" serve examples/programs/university.gd \
  --log examples/programs/university.mut \
  --wal "$TMP/serve.wal" --checkpoint-every 2 \
  --fault-plan point:wal.fsync:3 \
  > "$TMP/serve.crash.out" 2> "$TMP/serve.crash.err"
code=$?
set -e
[ "$code" = 1 ] || {
  echo "determinism: injected serve crash expected exit 1, got $code"
  exit 1
}
run_serve serve.rec --wal "$TMP/serve.wal" --recover
[ "$(cat "$TMP/serve.rec.code")" = 0 ] || {
  echo "determinism: serve recovery failed (exit $(cat "$TMP/serve.rec.code"))"
  exit 1
}
expect "$TMP/serve.rec.ck" serve.ck "serve: recovered checkpoint"
grep -v '^%' "$TMP/serve.rec.out" > "$TMP/serve.rec.facts"
grep -v '^%' "$GOLD/serve.out" > "$TMP/serve.golden.facts"
cmp -s "$TMP/serve.rec.facts" "$TMP/serve.golden.facts" || {
  echo "determinism: recovered serve fact listing drifted from golden"
  exit 1
}
echo "determinism: OK (recovered store matches the serve goldens)"

# Degradation-ladder determinism: the same fault plan and retry budget
# must produce the identical ladder transcript on every engine — the
# maintenance loop is always sequential indexed maintenance, so stdout
# (including the `%% ladder:` lines) is engine-invariant and pinned as a
# golden.
run_serve serve.ladder.seq --engine indexed \
  --retries 2 --fault-plan point:incr.delete:1
[ "$(cat "$TMP/serve.ladder.seq.code")" = 0 ] || {
  echo "determinism: ladder serve failed (exit $(cat "$TMP/serve.ladder.seq.code"))"
  exit 1
}
grep -q "ladder:" "$TMP/serve.ladder.seq.out" || {
  echo "determinism: fault plan produced no ladder transcript"
  exit 1
}
for aspect in code out; do
  expect "$TMP/serve.ladder.seq.$aspect" "serve.ladder.$aspect" \
    "serve ladder: indexed $aspect"
done
for d in 1 4; do
  run_serve "serve.ladder.d$d" --engine parallel --domains "$d" \
    --retries 2 --fault-plan point:incr.delete:1
  for aspect in code out; do
    expect "$TMP/serve.ladder.d$d.$aspect" "serve.ladder.$aspect" \
      "serve ladder: parallel --domains $d $aspect"
  done
done
echo "determinism: OK (ladder transcript identical across engines)"

# Record the clean pass for the short-circuit above.
fingerprint > "$STAMP"
