(* Cross-engine validation matrix: every evaluation pipeline the library
   offers must agree on every (ontology, database, query) combination.
   Engines: bounded chase (Prop 3.1), FPT linearization (Prop 3.3(3)),
   two-stage rewriting (Thm D.1 route), OMQ→CQS reduction (Prop 5.8),
   linear UCQ rewriting (Prop D.2, where applicable), restricted chase. *)

open Relational
open Relational.Term
open Guarded_core
module Tgd = Tgds.Tgd
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Named s) args)
let bool_q atoms = Ucq.of_cq (Cq.make atoms)

type scenario = {
  name : string;
  sigma : Tgd.t list;
  db : Instance.t;
  queries : Ucq.t list;
}

let scenarios () =
  let lubm_sigma, lubm_db = Workload.lubm ~universities:1 () in
  let dl_sigma =
    Dl.to_tgds
      [
        Dl.Sub (Dl.Atomic "A", Dl.Exists (Dl.Role "r", Dl.Atomic "B"));
        Dl.Sub (Dl.Atomic "B", Dl.Atomic "C");
        Dl.Role_sub (Dl.Role "r", Dl.Role "s");
      ]
  in
  [
    {
      name = "university";
      sigma = Workload.university_ontology ();
      db = Instance.of_facts [ fact "Prof" [ "ada" ]; fact "Course" [ "ml" ] ];
      queries =
        [
          bool_q [ atom "Dept" [ v "d" ] ];
          bool_q [ atom "Teaches" [ v "x"; v "c" ]; atom "OfferedBy" [ v "c"; v "d" ] ];
          bool_q [ atom "Mgr" [ v "m" ] ];
          bool_q [ atom "Faculty" [ v "x" ]; atom "Prof" [ v "x" ] ];
        ];
    };
    {
      name = "lubm-1";
      sigma = lubm_sigma;
      db = lubm_db;
      queries =
        [
          bool_q [ atom "AdvisedBy" [ v "s"; v "a" ]; atom "Faculty" [ v "a" ] ];
          bool_q [ atom "Takes" [ v "s"; v "c" ]; atom "OfferedBy" [ v "c"; v "d" ] ];
          bool_q [ atom "Nothing" [ v "x" ] ];
        ];
    };
    {
      name = "dl-medical";
      sigma = dl_sigma;
      db = Instance.of_facts [ fact "A" [ "a0" ]; fact "r" [ "a0"; "b0" ] ];
      queries =
        [
          bool_q [ atom "B" [ v "x" ] ];
          bool_q [ atom "C" [ v "x" ] ];
          bool_q [ atom "s" [ v "x"; v "y" ]; atom "A" [ v "x" ] ];
        ];
    };
    {
      name = "manager (infinite chase)";
      sigma = Workload.manager_ontology ();
      db = Instance.of_facts [ fact "Emp" [ "eve" ] ];
      queries =
        [
          bool_q [ atom "Managed" [ v "x" ] ];
          bool_q [ atom "ReportsTo" [ v "x"; v "m" ]; atom "Managed" [ v "m" ] ];
          bool_q [ atom "ReportsTo" [ v "x"; v "x" ] ];
        ];
    };
  ]

(* The chase-based reference verdict; max_level high enough for every
   scenario's queries. *)
let reference sigma db q = fst (Chase.certain ~max_level:7 sigma db q [])

let test_engines_agree () =
  List.iter
    (fun sc ->
      let omq q = Omq.full_data_schema ~ontology:sc.sigma ~query:q in
      List.iter
        (fun q ->
          let expected = reference sc.sigma sc.db q in
          let ctx engine = Fmt.str "%s / %a / %s" sc.name Ucq.pp q engine in
          (* FPT linearization *)
          if Tgd.all_guarded sc.sigma then begin
            let fpt = Omq_eval.certain_fpt ~max_level:10 (omq q) sc.db [] in
            if fpt.Omq_eval.exact then
              check (ctx "fpt") true (fpt.Omq_eval.holds = expected);
            (* two-stage rewriting *)
            let rw, rw_exact = Guarded_rewrite.holds sc.sigma sc.db q in
            if rw_exact then check (ctx "guarded-rewrite") true (rw = expected);
            (* OMQ→CQS reduction *)
            let d_star = Reductions.omq_to_cqs (omq q) sc.db in
            check (ctx "omq→cqs") true (Ucq.holds d_star q = expected)
          end;
          (* restricted chase *)
          let res = Chase.run ~policy:Chase.Restricted ~max_level:7 sc.sigma sc.db in
          if Chase.saturated res then
            check (ctx "restricted") true (Ucq.holds (Chase.instance res) q = expected);
          (* linear rewriting where applicable *)
          if Tgd.all_linear sc.sigma then begin
            let rw, complete = Tgds.Linear_rewrite.entails sc.sigma sc.db q [] in
            if complete then check (ctx "linear-rewrite") true (rw = expected)
          end)
        sc.queries)
    (scenarios ())

let test_lubm_scale_sanity () =
  let sigma, db = Workload.lubm ~universities:2 () in
  check "lubm db nonempty" true (Instance.size db > 40);
  check "lubm guarded" true (Tgd.all_guarded sigma);
  let q = bool_q [ atom "Student" [ v "s" ]; atom "AdvisedBy" [ v "s"; v "a" ] ] in
  let omq = Omq.full_data_schema ~ontology:sigma ~query:q in
  let r = Omq_eval.certain ~max_level:5 omq db [] in
  check "students certainly advised" true r.Omq_eval.holds

(* ------------------------------------------------------------------ *)
(* Randomized sweep of the clique reduction (the headline hardness)     *)
(* ------------------------------------------------------------------ *)

let test_clique_reduction_sweep_k2 () =
  (* k = 2 (edge detection) across 25 random graphs *)
  let d = Reductions.constraint_free_instance (Workload.path_cq 2) in
  List.iter
    (fun seed ->
      let graph = Workload.random_graph ~n:6 ~p:0.25 ~seed in
      match Reductions.clique_to_cqs d ~graph ~k:2 with
      | Some ci ->
          check
            (Fmt.str "seed %d" seed)
            true
            (Reductions.decide_clique ci = Qgraph.Graph.has_clique graph 2)
      | None -> Alcotest.fail "expected reduction instance")
    (List.init 25 Fun.id)

let test_clique_reduction_sweep_k3 () =
  (* k = 3 (triangle detection) across a dozen random graphs *)
  let d = Reductions.constraint_free_instance (Workload.grid_cq 3 3) in
  List.iter
    (fun seed ->
      let graph = Workload.random_graph ~n:7 ~p:0.3 ~seed:(seed * 13 + 1) in
      match Reductions.clique_to_cqs d ~graph ~k:3 with
      | Some ci ->
          check
            (Fmt.str "seed %d" seed)
            true
            (Reductions.decide_clique ci = Qgraph.Graph.has_clique graph 3)
      | None -> Alcotest.fail "expected reduction instance")
    (List.init 12 Fun.id)

let test_grohe_h0_always_hom () =
  (* item (1) of Theorem 7.1 across random graphs *)
  let d = Reductions.constraint_free_instance (Workload.grid_cq 3 3) in
  let dp' = Cq.canonical_db d.Reductions.p' in
  List.iter
    (fun seed ->
      let graph = Workload.random_graph ~n:6 ~p:0.4 ~seed:(seed * 7 + 3) in
      match Reductions.clique_to_cqs d ~graph ~k:3 with
      | Some ci ->
          check
            (Fmt.str "h0 hom, seed %d" seed)
            true
            (Grohe.h0_is_homomorphism ci.Reductions.d_star dp')
      | None -> Alcotest.fail "expected reduction instance")
    (List.init 8 Fun.id)

let () =
  Alcotest.run "matrix"
    [
      ( "cross-engine",
        [
          Alcotest.test_case "all engines agree" `Slow test_engines_agree;
          Alcotest.test_case "lubm sanity" `Quick test_lubm_scale_sanity;
          Alcotest.test_case "clique sweep k=2" `Quick test_clique_reduction_sweep_k2;
          Alcotest.test_case "clique sweep k=3" `Slow test_clique_reduction_sweep_k3;
          Alcotest.test_case "h0 always a hom" `Slow test_grohe_h0_always_hom;
        ] );
    ]
