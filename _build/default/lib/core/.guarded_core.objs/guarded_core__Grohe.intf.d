lib/core/grohe.mli: Instance Qgraph Relational Term
