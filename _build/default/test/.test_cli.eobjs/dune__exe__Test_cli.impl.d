test/test_cli.ml: Alcotest Filename Fmt String Sys
