lib/syntax/pretty.ml: Atom Cq Fact Fmt List Parser Relational Schema String Term Tgds Ucq
