(* Querying in the presence of constraints (closed world, §3.2).

   Inclusion dependencies (a special case of guarded TGDs, §1) as
   integrity constraints over an order-management schema: the promise that
   the database satisfies them licenses semantic query optimization — the
   executable content of the tractable side of Theorem 5.7.

   Run with: dune exec examples/referential.exe *)

open Relational
open Guarded_core

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Term.Named s) args)

let constraints = Workload.referential_constraints ()

let db =
  Instance.of_facts
    [
      fact "Customer" [ "alice" ];
      fact "Customer" [ "bela" ];
      fact "Order" [ "o1"; "alice" ];
      fact "Order" [ "o2"; "bela" ];
      fact "Line" [ "l1"; "o1" ];
      fact "Line" [ "l2"; "o1" ];
      fact "Line" [ "l3"; "o2" ];
    ]

let () =
  Fmt.pr "== constraint-aware querying: referential integrity ==@.@.";
  Fmt.pr "constraints:@.  %a@.@."
    Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp)
    constraints;

  (* the promise *)
  let q =
    Ucq.of_cq
      (Cq.make ~answer:[ "l" ]
         [
           atom "Line" [ v "l"; v "o" ];
           atom "Order" [ v "o"; v "c" ];
           atom "Customer" [ v "c" ];
         ])
  in
  let s = Cqs.make ~constraints ~query:q in
  Fmt.pr "database admissible (D ⊨ Σ): %b@.@." (Cqs.admissible s db);

  (* naive evaluation of the 3-way join *)
  Fmt.pr "lines of orders of existing customers: %a@."
    Fmt.(list ~sep:(any ", ") (fun ppf t -> Term.pp_const ppf (List.hd t)))
    (Cqs_eval.answers s db);

  (* the constraints make both joins redundant *)
  let s_opt = Cqs_eval.optimize s in
  Fmt.pr "Σ-minimized query: %a@." Ucq.pp (Cqs.query s_opt);
  Fmt.pr "same answers on admissible databases: %b@.@."
    (Cqs_eval.answers s db = Cqs_eval.answers s_opt db);

  (* the meta problem: the original query is uniformly UCQ1-equivalent *)
  (match Equivalence.semantic_ucq_treewidth s with
  | Some (k, witness) ->
      Fmt.pr "uniformly UCQ%d-equivalent; witness: %a@." k Ucq.pp
        (Cqs.query witness)
  | None -> Fmt.pr "not uniformly UCQk-equivalent for small k@.");

  (* a broken database violates the promise — and evaluation would then be
     answering a different question *)
  let broken = Instance.add_fact (fact "Order" [ "o9"; "ghost" ]) db in
  Fmt.pr "@.broken database admissible: %b@." (Cqs.admissible s broken);
  Fmt.pr "(the optimizer's output is only guaranteed on admissible data)@.";
  Fmt.pr "@.done.@."
