(** Ground facts: atoms over constants only. *)

type t

val make : string -> Term.const list -> t
val pred : t -> string
val args : t -> Term.const list
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val consts : t -> Term.ConstSet.t

(** [of_atom a] — converts a ground atom; raises [Invalid_argument] on
    variables. *)
val of_atom : Atom.t -> t

val to_atom : t -> Atom.t

(** [rename f fact] maps every constant through [f] (identity on
    [None]). *)
val rename : (Term.const -> Term.const option) -> t -> t

(** Do all constants of the fact belong to [set]? *)
val within : Term.ConstSet.t -> t -> bool

(** Does the fact mention a labelled null? *)
val is_ground_of_nulls : t -> bool

val pp : Format.formatter -> t -> unit
