lib/core/equivalence.ml: Approximation Cqs Logs Omq Relational Schema Sigma_containment Ucq
