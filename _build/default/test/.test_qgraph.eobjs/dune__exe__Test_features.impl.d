test/test_features.ml: Alcotest Atom C5_gadget Cq Diversification Dl Fact Fmt Guarded_core Instance List Omq Omq_eval Qgraph Reductions Relational Term Tgds Ucq Workload
