(** CQ specializations [(p, V)] and Σ-groundings (Appendix C.1/C.2): the
    building blocks of the UCQk-approximations of guarded OMQs
    (Definition C.6). *)

open Relational

type t = { contraction : Cq.t; v : Term.VarSet.t }

(** All specializations of [q] (Definition C.1); exponential — meta
    problems on small queries only. *)
val all : Cq.t -> t list

(** The guarded full CQs [дᵢ] for one maximally [V]-connected component
    [pi] with interface variables [vi] (Definition C.3); capped
    enumeration, see DESIGN.md §5.5. *)
val component_groundings :
  ?max_level:int ->
  ?max_side:int ->
  index:int ->
  Schema.t ->
  Tgds.Tgd.t list ->
  Atom.t list ->
  string list ->
  Atom.t list list

(** The Σ-groundings of a specialization, as CQs. *)
val groundings :
  ?max_level:int -> ?max_side:int -> Schema.t -> Tgds.Tgd.t list -> t -> Cq.t list
