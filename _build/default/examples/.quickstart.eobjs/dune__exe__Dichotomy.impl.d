examples/dichotomy.ml: Atom Cq Cq_core Cqs Equivalence Fmt Grohe Guarded_core Instance List Qgraph Reductions Relational Term Tgds Tw_eval Ucq Unix Workload
