(** Conjunctive queries (§2): answer variables plus an atom list, every
    other variable existentially quantified. Treewidth follows the paper's
    liberal definition (existential subgraph; edge-free ⇒ treewidth 1). *)

type t

(** [make ?answer atoms] — answer variables must be distinct. *)
val make : ?answer:string list -> Atom.t list -> t

val answer : t -> string list
val atoms : t -> Atom.t list
val arity : t -> int
val is_boolean : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

(** All variables of the query. *)
val vars : t -> Term.VarSet.t

(** Existentially quantified variables. *)
val evars : t -> Term.VarSet.t

val consts : t -> Term.ConstSet.t

(** Number of atoms + arity: a proxy for [‖q‖]. *)
val norm : t -> int

(** Schema of the predicates used by [q]. *)
val schema : t -> Schema.t

(** [freeze x] — the constant representing variable [x] in [D[q]]. *)
val freeze : string -> Term.const

(** [unfreeze c] — recover the variable from a frozen constant. *)
val unfreeze : Term.const -> string option

(** Canonical database [D[q]] (§2). *)
val canonical_db : t -> Instance.t

(** Frozen answer tuple of [q]. *)
val frozen_answer : t -> Term.const list

(** [of_instance ?answer i] — read an instance back as a CQ (inverse of
    {!canonical_db} on frozen instances); [answer] lists the constants
    that become answer variables, in order. *)
val of_instance : ?answer:Term.const list -> Instance.t -> t

(** [apply subst q] — substitution on the atoms; answer variables may only
    be renamed to variables. *)
val apply : Term.t Term.VarMap.t -> t -> t

(** Rename every existential variable by appending [suffix]. *)
val rename_apart : suffix:string -> t -> t

(** [entails db q c̄] — the evaluation problem of §2: is [c̄ ∈ q(db)]? *)
val entails : Instance.t -> t -> Term.const list -> bool

(** Boolean entailment [db ⊨ q]. *)
val holds : Instance.t -> t -> bool

(** The evaluation [q(db)], deduplicated. *)
val answers : Instance.t -> t -> Term.const list list

(** [entails_io db q c̄] — [db ⊨io q(c̄)]: some homomorphism witnesses [c̄]
    and every witnessing homomorphism is injective (Appendix D.1). *)
val entails_io : Instance.t -> t -> Term.const list -> bool

(** Gaifman graph of [q] over its variables. *)
val gaifman : t -> Qgraph.Graph.t * string array

(** Treewidth per the paper (§2): of the existential subgraph, 1 when that
    subgraph is edge-free. *)
val treewidth : t -> int

(** Membership in CQ_k. *)
val in_cqk : int -> t -> bool

(** [restrict_to q v] — [q|V]: atoms with all variables in [v]. *)
val restrict_to : t -> Term.VarSet.t -> Atom.t list

(** [drop q v] — [q[V]]: atoms mentioning a variable outside [v]. *)
val drop : t -> Term.VarSet.t -> Atom.t list

(** Is the subgraph induced by [vars(q) \ V] connected? *)
val is_v_connected : t -> Term.VarSet.t -> bool

(** The maximally [V]-connected components of [q[V]] (Appendix C.1), as
    atom lists. *)
val v_connected_components : t -> Term.VarSet.t -> Atom.t list list

(** Whether the Gaifman graph over all variables is connected (§7). *)
val is_connected : t -> bool

(** Normal form used to deduplicate contractions (sorted atoms). *)
val normalize : t -> t

(** Identify two variables (answer-variable pairs are refused with
    [None]; the answer variable's name survives). *)
val contract_pair : t -> string -> string -> t option

(** All contractions of [q], including [q] itself (§5.2); exponential. *)
val contractions : t -> t list

(** Contractions other than [q] itself. *)
val proper_contractions : t -> t list

(** Is [qc] obtainable from [q] by identifying variables? *)
val is_contraction_of : t -> t -> bool

val pp : Format.formatter -> t -> unit
