examples/quickstart.mli:
