(* The two-step FO-rewriting pipeline:

   1. Lemma A.3: linearize a *guarded* ontology Σ into a linear Σ* over
      type predicates (with a data part D ↦ D_star).
   2. Proposition D.2: rewrite the query over a *linear* ontology into a
      UCQ evaluated directly on the database — no chase at query time.

   Run with: dune exec examples/rewriting.exe *)

open Relational

let v = Term.var
let atom p args = Atom.make p args
let fact p args = Fact.make p (List.map (fun s -> Term.Named s) args)

let () =
  Fmt.pr "== rewriting pipelines ==@.@.";

  (* ------- linear TGDs: perfect UCQ rewriting ------- *)
  Fmt.pr "-- Proposition D.2: UCQ rewriting for inclusion dependencies --@.";
  let sigma_lin =
    [
      Tgds.Tgd.make ~body:[ atom "emp" [ v "x" ] ] ~head:[ atom "works" [ v "x"; v "d" ] ];
      Tgds.Tgd.make ~body:[ atom "works" [ v "x"; v "d" ] ] ~head:[ atom "unit" [ v "d" ] ];
      Tgds.Tgd.make ~body:[ atom "boss" [ v "x" ] ] ~head:[ atom "emp" [ v "x" ] ];
    ]
  in
  Fmt.pr "Σ (linear):@.  %a@." Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp) sigma_lin;
  let q = Ucq.of_cq (Cq.make [ atom "unit" [ v "u" ] ]) in
  let q', complete = Tgds.Linear_rewrite.rewrite sigma_lin q in
  Fmt.pr "query ∃u unit(u) rewrites into %d disjuncts (complete=%b):@.  %a@.@."
    (List.length (Ucq.disjuncts q'))
    complete Ucq.pp q';
  let db = Instance.of_facts [ fact "boss" [ "dana" ] ] in
  Fmt.pr "on D = {boss(dana)}: rewriting says %b, chase says %b@.@."
    (Ucq.holds db q')
    (fst (Tgds.Chase.certain sigma_lin db q []));

  (* ------- guarded TGDs: linearization ------- *)
  Fmt.pr "-- Lemma A.3: linearizing a guarded ontology --@.";
  let sigma_g =
    [
      Tgds.Tgd.make
        ~body:[ atom "contract" [ v "x"; v "y" ]; atom "vip" [ v "x" ] ]
        ~head:[ atom "priority" [ v "y" ] ];
      Tgds.Tgd.make
        ~body:[ atom "priority" [ v "y" ] ]
        ~head:[ atom "handled_by" [ v "y"; v "m" ] ];
      Tgds.Tgd.make
        ~body:[ atom "handled_by" [ v "y"; v "m" ] ]
        ~head:[ atom "manager" [ v "m" ] ];
    ]
  in
  Fmt.pr "Σ (guarded, not linear):@.  %a@."
    Fmt.(list ~sep:(any "@.  ") Tgds.Tgd.pp)
    sigma_g;
  let db_g =
    Instance.of_facts [ fact "contract" [ "acme"; "c1" ]; fact "vip" [ "acme" ] ]
  in
  let lin = Tgds.Linearize.make sigma_g db_g in
  Fmt.pr "D* has %d typed facts; Σ* has %d linear rules over %d Σ-types@."
    (Instance.size lin.Tgds.Linearize.db_star)
    (List.length lin.Tgds.Linearize.sigma_star)
    (List.length lin.Tgds.Linearize.types);
  assert (Tgds.Tgd.all_linear lin.Tgds.Linearize.sigma_star);
  let q_mgr = Ucq.of_cq (Cq.make [ atom "manager" [ v "m" ] ]) in
  let via_lin, exact = Tgds.Linearize.certain lin q_mgr [] in
  let direct, _ = Tgds.Chase.certain sigma_g db_g q_mgr [] in
  Fmt.pr "∃m manager(m): via linearization %b (exact=%b), via direct chase %b@."
    via_lin exact direct;

  (* and the two pipelines compose: Σ* is linear, so it is UCQ-rewritable
     in principle — over the type signature of D*. *)
  Fmt.pr "@.Σ* is linear — Proposition D.2 applies to it over the typed data D*.@.";
  Fmt.pr "@.done.@."
