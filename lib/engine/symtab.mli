(** Symbol interning for the columnar fact store.

    Constants, labelled nulls and predicate names are mapped to dense
    non-negative ints so the store's columns, posting lists and
    membership keys are flat int data. Two id spaces: {e symbols}
    (constants and nulls) and {e predicates}.

    Id assignment is deterministic in the operation sequence: {!intern}
    assigns first-seen order, and {!seed} assigns a sorted batch so the
    resulting ids do not depend on how the batch was interleaved. Ids
    are internal — every observable surface (output, checkpoints,
    stats) goes through {!extern} — but determinism keeps replays and
    cross-engine runs structurally aligned.

    {2 Shard overlays}

    A worker domain must never mutate the shared table. {!overlay}
    gives a shard a private view: known symbols resolve to their base
    ids, unknown ones get {e provisional} ids drawn from a per-shard
    range (strictly negative, interleaved by shard index so ranges are
    disjoint for any shard count). {!reconcile} folds the overlays'
    new symbols back into the base table in sorted order, so the
    canonical ids ultimately assigned are independent of both the
    shard count and which shard first saw a symbol. Provisional ids
    never escape an overlay except through {!overlay_extern}. *)

open Relational.Term

type t

val create : unit -> t

(** Number of interned symbols (ids are [0 .. size - 1]). *)
val size : t -> int

(** [intern t c] — the id of [c], assigning the next dense id when new. *)
val intern : t -> const -> int

(** [find t c] — the id of [c] when already interned; never assigns. *)
val find : t -> const -> int option

(** Like {!find} but returns [-1] for unknown symbols — no option
    allocation on the matching hot path. *)
val find_int : t -> const -> int

(** [extern t id] — the symbol for a base id. Raises [Invalid_argument]
    on an id never assigned. *)
val extern : t -> int -> const

(** [seed t cs] — intern a batch in sorted order ([compare_const]),
    so the ids assigned are independent of the order of [cs]. *)
val seed : t -> const list -> unit

val intern_pred : t -> string -> int
val find_pred : t -> string -> int option

(** Like {!find_pred} but returns [-1] for unknown predicates. *)
val find_pred_int : t -> string -> int
val extern_pred : t -> int -> string
val pred_count : t -> int

(** {2 Per-shard provisional ranges} *)

type overlay

(** [overlay t ~shard ~shards] — a read-only view of [t] with a private
    provisional range for shard [shard] of [shards]. *)
val overlay : t -> shard:int -> shards:int -> overlay

(** Resolve through the base table, assigning a provisional (negative)
    id when the symbol is unknown to the base. *)
val overlay_intern : overlay -> const -> int

(** Symbols a base or provisional id stands for, from this overlay's
    point of view. *)
val overlay_extern : overlay -> int -> const

(** Symbols this overlay assigned provisional ids to, in assignment
    order. *)
val overlay_news : overlay -> const list

(** [reconcile t os] — intern every overlay-new symbol into the base
    table, sorted and deduplicated first: the canonical ids are a
    function of the {e set} of new symbols only, not of the shard
    count or discovery order. *)
val reconcile : t -> overlay array -> unit
