lib/relational/fact.ml: Atom ConstSet Fmt List Stdlib Term
