examples/referential.mli:
