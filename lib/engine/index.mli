(** Indexed fact store.

    A hashed view of a {!Relational.Instance.t} keyed by
    [(predicate, argument position, constant)]: for every fact
    [R(c1,…,cn)] and every position [i], the tuple [(c1,…,cn)] is filed
    under [(R, i, ci)]. A join atom with at least one bound position is
    then matched against the smallest posting list of its bound positions
    instead of the whole relation — the O(1)-per-candidate retrieval the
    semi-naive chase and the {!Joiner} build on.

    The API is immutable in style — {!add} returns the store — but the
    store shares its internal hash tables: use it linearly (the returned
    handle supersedes the argument). Conversion to and from
    [Instance.t] is provided at both ends. *)

open Relational
open Relational.Term

type t

(** A fresh empty store. *)
val create : unit -> t

(** Build a store holding the facts of an instance. *)
val of_instance : Instance.t -> t

(** The facts of the store, as an instance. *)
val to_instance : t -> Instance.t

(** The facts of the store in {e storage order}: predicates in intern
    order, each relation's live rows oldest-first (append order of the
    surviving posting entries). Inserting the returned facts into a
    fresh store, in order, reproduces this store's iteration order
    exactly — posting lists and relations present candidates in the same
    sequence — which is what trajectory-faithful recovery of a
    maintained store needs (row handles and free-list state may differ;
    neither is observable through the matching API). *)
val ordered_facts : t -> Fact.t list

(** [add f idx] — file [f] under every argument position. No-op when the
    fact is already present. Mutates [idx] in place and returns it. *)
val add : Fact.t -> t -> t

(** [insert f idx] — like {!add}, but reports whether the fact was new
    (a single membership probe; the engine's hot path). *)
val insert : Fact.t -> t -> bool

(** [remove f idx] — delete [f] from the store and prune every posting
    list it was filed under; [false] when it was not present. Counts
    against [index.removes]. The incremental maintenance layer's
    over-delete phase is the intended caller — the chase itself never
    retracts. *)
val remove : Fact.t -> t -> bool

val mem : Fact.t -> t -> bool

(** Number of (distinct) facts. *)
val size : t -> int

(** All tuples of predicate [p] (most recently added first). *)
val tuples_of : t -> string -> const list list

(** [tuples_at idx p i c] — the posting list of [(p, i, c)]: tuples of
    [p] whose [i]-th argument (0-based) is [c]. *)
val tuples_at : t -> string -> int -> const -> const list list

(** [count_at idx p i c] — length of the posting list, without
    materializing it. *)
val count_at : t -> string -> int -> const -> int

(** Number of tuples of [p]. *)
val count_of : t -> string -> int

(** [candidates idx atom binding] — candidate tuples for [atom] under
    [binding]: the smallest posting list over the bound positions of the
    atom (argument is a constant, or a variable bound by [binding]), or
    the whole relation when no position is bound. Every returned tuple
    still has to be checked positionally by the caller. *)
val candidates : t -> Atom.t -> Homomorphism.binding -> const list list

(** [candidate_count idx atom binding] — the length of the list
    {!candidates} would return, computed from bucket sizes only (used
    for cheapest-first atom ordering). *)
val candidate_count : t -> Atom.t -> Homomorphism.binding -> int

(** [fold_matches idx atom binding ~injective ~on_candidate ~on_fail f acc]
    — fold [f] over the extensions of [binding] that match [atom]
    against a stored fact, without materializing candidate tuples: the
    atom is compiled to an interned int pattern and compared against the
    store's columns cell by cell. Candidates come from the same posting
    list {!candidates} would pick, in the same (most recently added
    first) order; [on_candidate] fires once per candidate considered and
    [on_fail] once per candidate that does not match, so callers keep
    exact [joiner.candidates]/[joiner.backtracks] accounting. Counts one
    [index.probes] probe, like the list retrieval it replaces.
    [~injective] refuses extensions whose new values collide with the
    binding's range (or each other). *)
val fold_matches :
  t ->
  Atom.t ->
  Homomorphism.binding ->
  injective:bool ->
  on_candidate:(unit -> unit) ->
  on_fail:(unit -> unit) ->
  (Homomorphism.binding -> 'a -> 'a) ->
  'a ->
  'a

(** {2 Compiled atoms}

    The answer-enumeration hot path runs on interned ints end to end: a
    query atom is compiled once per request against the store's symbol
    table, and every subsequent selection/matching step is flat int
    arithmetic against a caller-owned binding environment — no [VarMap],
    no option, no tuple materialization. A binding environment [benv] is
    an int array indexed by variable slot: [benv.(s) >= 0] is the cell
    id the variable is bound to, [-1] is unbound. The caller owns slot
    assignment (one slot map per conjunctive query). *)

type catom
(** A compiled query atom. Carries private matching scratch: compile one
    per (request, atom); never share a [catom] between domains. *)

val compile_atom : t -> slot:(string -> int) -> Atom.t -> catom
(** [compile_atom idx ~slot a] — resolve [a]'s predicate and constant
    arguments against the store's symbol table (unknown symbols compile
    to never-matching patterns) and its variables to [slot x]. *)

val catom_unbound : catom -> benv:int array -> bool
(** Does the atom still contain a variable unbound in [benv]? *)

val catom_count : t -> catom -> benv:int array -> int
(** {!candidate_count}, compiled: the same bucket sizes and
    first-strictly-smaller tie-breaking, with bound positions read from
    [benv]. No probe is counted (selection is free, as before). *)

val fold_catom :
  t ->
  catom ->
  benv:int array ->
  on_candidate:(unit -> unit) ->
  on_fail:(unit -> unit) ->
  (int -> bool) ->
  int ->
  bool
(** [fold_catom idx ca ~benv ~on_candidate ~on_fail f arg] —
    {!fold_matches}, compiled and non-injective: walk the same posting
    list in the same (most recently added first) order, binding [ca]'s
    unbound variables directly in [benv] for the duration of each
    matching candidate's [f arg] call (undone before the next candidate
    and before returning). [f] returning [true] stops the walk early and
    makes the fold return [true] — the satisfiability caller's early
    exit. [on_candidate]/[on_fail] fire exactly as in {!fold_matches},
    and one [index.probes] probe is counted. If [f] raises, [benv] is
    left as the raise saw it (the enumeration paths abandon the whole
    request on such unwinds). *)

(** Number of posting-list probes performed so far (statistics). *)
val probes : t -> int

(** The store's symbol table (shared with {!reader} views). *)
val symtab : t -> Symtab.t

(** Allocated capacity of the store's flat vectors, in words; stable
    under insert/delete churn thanks to free-list row reuse (asserted by
    the capacity-leak regression tests). *)
val capacity_words : t -> int

(** The store's metrics registry: [index.probes], [index.inserts],
    [index.duplicates], [index.removes], plus the [joiner.*] counters the
    {!Joiner} files against the store it searches. *)
val metrics : t -> Obs.Metrics.t

(** [reader idx] — a view sharing [idx]'s fact tables but owning a fresh
    metrics registry. Worker domains search through readers (one each) so
    probe counting never races on the shared registry; the caller merges
    the reader registries back with {!Obs.Metrics.absorb}. The view must
    only be {e read} while [idx] itself is not being mutated — inserting
    through either handle while another domain reads is a data race. *)
val reader : t -> t
