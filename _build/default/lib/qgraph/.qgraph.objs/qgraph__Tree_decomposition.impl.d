lib/qgraph/tree_decomposition.ml: Fmt Graph Hashtbl List
