(** Ontology-mediated queries (§3.1).

    An OMQ is a triple [Q = (S, Σ, q)]: a data schema [S] over which input
    databases range, an ontology [Σ] over an extended schema [T ⊇ S], and a
    UCQ [q] over [T]. *)

open Relational

type t = { data_schema : Schema.t; ontology : Tgds.Tgd.t list; query : Ucq.t }

(** [make ~data_schema ~ontology ~query] — checks that the data schema is
    compatible with the extended schema (arities agree where predicates are
    shared). *)
let make ~data_schema ~ontology ~query =
  let extended =
    Schema.union (Tgds.Tgd.schema_of_set ontology) (Ucq.schema query)
  in
  (* Schema.union raises on arity conflicts *)
  ignore (Schema.union data_schema extended);
  { data_schema; ontology; query }

let data_schema q = q.data_schema
let ontology q = q.ontology
let query q = q.query
let arity q = Ucq.arity q.query

(** The extended schema [T]: every predicate of the ontology, the query and
    the data schema. *)
let extended_schema q =
  Schema.union q.data_schema
    (Schema.union (Tgds.Tgd.schema_of_set q.ontology) (Ucq.schema q.query))

(** [has_full_data_schema q] — [S = T] (§5.1). *)
let has_full_data_schema q = Schema.equal q.data_schema (extended_schema q)

(** [full_data_schema ~ontology ~query] — the OMQ with [S = T]. *)
let full_data_schema ~ontology ~query =
  let s = Schema.union (Tgds.Tgd.schema_of_set ontology) (Ucq.schema query) in
  { data_schema = s; ontology; query }

(** [||Q||] — a size proxy used for fpt bookkeeping. *)
let norm q =
  Ucq.norm q.query
  + List.fold_left
      (fun acc t ->
        acc
        + List.length (Tgds.Tgd.body t)
        + List.length (Tgds.Tgd.head t))
      0 q.ontology

(** [accepts_database q db] — [db] is an S-database. *)
let accepts_database q db = Schema.subset (Instance.schema db) q.data_schema

let in_guarded q = Tgds.Tgd.all_guarded q.ontology
let in_frontier_guarded q = Tgds.Tgd.all_frontier_guarded q.ontology

(** Membership of the OMQ in [(C, UCQ_k)] for its UCQ part. *)
let in_ucqk k q = Ucq.in_ucqk k q.query

let pp ppf q =
  Fmt.pf ppf "@[<v>OMQ over %a@,Σ = {%a}@,q = %a@]" Schema.pp q.data_schema
    Fmt.(list ~sep:(any "; ") Tgds.Tgd.pp)
    q.ontology Ucq.pp q.query
