(** Relational schemas: finite sets of predicates with arities (§2). *)

module SMap = Map.Make (String)

type t = int SMap.t

let empty : t = SMap.empty

(** [of_list [(p, ar); ...]] builds a schema; duplicate predicates must
    agree on arity. *)
let of_list l =
  List.fold_left
    (fun s (p, ar) ->
      match SMap.find_opt p s with
      | Some ar' when ar' <> ar ->
          invalid_arg
            (Printf.sprintf "Schema.of_list: %s declared with arities %d and %d"
               p ar' ar)
      | _ -> SMap.add p ar s)
    empty l

let add p ar s = SMap.add p ar s
let mem p (s : t) = SMap.mem p s
let arity_of p (s : t) = SMap.find_opt p s
let predicates (s : t) = SMap.bindings s |> List.map fst
let bindings (s : t) = SMap.bindings s
let cardinal (s : t) = SMap.cardinal s

(** [ar s] is the arity of the schema: the maximum predicate arity
    (0 for the empty schema). *)
let ar (s : t) = SMap.fold (fun _ a acc -> max a acc) s 0

let union (a : t) (b : t) =
  SMap.union
    (fun p ar1 ar2 ->
      if ar1 = ar2 then Some ar1
      else
        invalid_arg
          (Printf.sprintf "Schema.union: %s has arities %d and %d" p ar1 ar2))
    a b

let subset (a : t) (b : t) =
  SMap.for_all (fun p ar -> SMap.find_opt p b = Some ar) a

let equal (a : t) (b : t) = SMap.equal Int.equal a b
let diff (a : t) (b : t) = SMap.filter (fun p _ -> not (SMap.mem p b)) a

let pp ppf (s : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") (fun ppf (p, a) -> Fmt.pf ppf "%s/%d" p a))
    (SMap.bindings s)
