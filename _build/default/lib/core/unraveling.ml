(** Guarded unraveling (Appendix D.1).

    [guarded ?depth db start] unravels [db] from the guarded set [start]
    into a tree-shaped instance: nodes are sequences of guarded sets with
    consecutive overlap; each node carries an isomorphic copy of the
    restriction of [db] to its guarded set, sharing exactly the constants
    of the overlap with its parent. The result (level-bounded to [depth])
    has treewidth at most [ar(schema) − 1] and maps homomorphically back
    to [db] via [up]. *)

open Relational
open Relational.Term

type t = {
  instance : Instance.t;
  up : const ConstMap.t;  (** copy ↦ original ([a↑]); identity on originals *)
}

let guarded ?(depth = 3) db (start : ConstSet.t) =
  let up = ref ConstMap.empty in
  let result = ref Instance.empty in
  let guarded_sets = Instance.guarded_sets db in
  (* node = (original guarded set, mapping original const -> copy) *)
  let copy_of mapping orig =
    match ConstMap.find_opt orig mapping with
    | Some c -> c
    | None -> orig
  in
  let add_node bag mapping =
    let piece = Instance.restrict db bag in
    let renamed = Instance.rename (fun c -> Some (copy_of mapping c)) piece in
    result := Instance.union !result renamed
  in
  let rec expand bag mapping level =
    add_node bag mapping;
    if level < depth then
      List.iter
        (fun next ->
          if
            (not (ConstSet.equal next bag))
            && not (ConstSet.is_empty (ConstSet.inter next bag))
          then begin
            (* fresh copies for the constants entering at this node *)
            let mapping' =
              ConstSet.fold
                (fun c acc ->
                  if ConstSet.mem c bag then
                    ConstMap.add c (copy_of mapping c) acc
                  else begin
                    let copy = fresh_null () in
                    up := ConstMap.add copy c !up;
                    ConstMap.add c copy acc
                  end)
                next ConstMap.empty
            in
            expand next mapping' (level + 1)
          end)
        guarded_sets
  in
  let root_mapping =
    ConstSet.fold (fun c acc -> ConstMap.add c c acc) start ConstMap.empty
  in
  expand start root_mapping 0;
  (* identity entries for original constants *)
  let up_total =
    ConstSet.fold
      (fun c acc -> if ConstMap.mem c acc then acc else ConstMap.add c c acc)
      (Instance.dom !result) !up
  in
  { instance = !result; up = up_total }

(** The unraveling maps back to the original database. *)
let verify db (u : t) =
  Homomorphism.verify_between u.instance db u.up
