(** Tree decompositions (§2 of the paper): trees of bags covering every
    vertex and edge, with connected occurrence sets. *)

module ISet = Graph.ISet
module IMap = Graph.IMap

type t

val make : ISet.t IMap.t -> (int * int) list -> t

(** Single-node decomposition with one bag. *)
val singleton : ISet.t -> t

val bags : t -> ISet.t IMap.t
val tree_edges : t -> (int * int) list
val num_nodes : t -> int
val bag : t -> int -> ISet.t

(** Width: max bag size − 1 (and −1 if there are no bags). *)
val width : t -> int

(** The tree of the decomposition as a {!Graph.t} over node ids. *)
val skeleton : t -> Graph.t

(** [verify g t] checks the three conditions of §2 and that the skeleton
    is a tree. *)
val verify : Graph.t -> t -> bool

(** [of_elimination_order g order] builds a tree decomposition from an
    elimination order; its width is the width of the order. Disconnected
    inputs yield one subtree per component, stitched into a single tree. *)
val of_elimination_order : Graph.t -> int list -> t

val pp : Format.formatter -> t -> unit
