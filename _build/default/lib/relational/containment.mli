(** Classical (constraint-free) containment of CQs and UCQs
    (Chandra–Merlin, [17]). *)

(** [cq_contained q1 q2] — [q1 ⊆ q2]. *)
val cq_contained : Cq.t -> Cq.t -> bool

val cq_equivalent : Cq.t -> Cq.t -> bool

(** [u1 ⊆ u2] — every disjunct of [u1] contained in some disjunct of
    [u2]. *)
val ucq_contained : Ucq.t -> Ucq.t -> bool

val ucq_equivalent : Ucq.t -> Ucq.t -> bool

(** Drop disjuncts subsumed by other disjuncts. *)
val minimize_ucq : Ucq.t -> Ucq.t
