(* Cross-engine equivalence harness for the fact-store substrate.

   The store under [lib/engine] is the load-bearing representation five
   consumers share (Chase, Enumerate, Incr, Parallel, Resil); this suite
   pins its *observable* behaviour so the representation can change
   underneath without anything noticing. The contract, over random
   guarded programs × random databases:

   - fresh chase: facts with their exact null ids and Lemma A.1
     s-levels, every clean-boundary checkpoint's bytes, the counter
     stats (up to the timing histograms) and the enumerated answer sets
     are byte-identical across {Indexed, Parallel 1/2/4};
   - resume: continuing any checkpointed boundary is byte-identical
     across the indexed engine family;
   - serve: a maintained store (initial chase under any indexed-family
     engine, then a mutation log) holds byte-identical facts, effects,
     checkpoint and counters;
   - Naive agrees with the family up to null renaming, and exactly on
     answer sets (answers are null-free).

   The fixed-oracle cases additionally embed literals produced by the
   pre-columnar hash-of-lists store, so a representation change that
   drifts any observable fails here before it reaches CI's golden
   sweep. *)

open Relational
module Chase = Tgds.Chase

let check = Alcotest.(check bool)
let v = Generators.v
let atom = Generators.atom
let fact = Generators.fact
let tgd = Generators.tgd

(* The stats report is deterministic up to its timing tail; comparisons
   cut at the histograms key (which also drops the span). *)
let cut_at_histograms s =
  let marker = {|,"histograms":|} in
  let n = String.length s and m = String.length marker in
  let rec find i =
    if i + m > n then s
    else if String.sub s i m = marker then String.sub s 0 i
    else find (i + 1)
  in
  find 0

let family = [ `Indexed; `Parallel 1; `Parallel 2; `Parallel 4 ]

(* ------------------------------------------------------------------ *)
(* Fresh chase: everything observable about one budgeted run            *)
(* ------------------------------------------------------------------ *)

(* Facts with null ids and s-levels, saturation/outcome, every
   clean-boundary checkpoint serialised (engine field normalised — it
   names the engine family by design), the stats report up to the
   timing tail, and the answer sets of the fixed query pool. *)
let chase_observables ~engine ~policy sigma db =
  Term.reset_nulls ();
  let snaps = ref [] in
  let r =
    Chase.run ~engine ~policy ~budget:(Generators.resil_budget ())
      ~on_pass:(fun ~level:_ ~saturated:_ take -> snaps := take () :: !snaps)
      sigma db
  in
  let stats =
    cut_at_histograms
      (Obs.Json.to_string (Obs.Report.to_json (Chase.report ~name:"store" r)))
  in
  let trace =
    List.rev_map
      (fun s ->
        Obs.Json.to_string
          (Resil.Checkpoint.to_json { s with Chase.snap_engine = `Indexed }))
      !snaps
  in
  let answers =
    List.map
      (fun q ->
        (Engine.Enumerate.ucq ~universe:(Instance.dom db) (Chase.index r) q)
          .Engine.Enumerate.answers)
      Generators.queries
  in
  ( List.sort Stdlib.compare (Generators.facts_levels r),
    Chase.saturated r,
    Chase.max_level r,
    Chase.outcome r,
    stats,
    trace,
    answers )

let print_case (sigma, db, policy) =
  Fmt.str "%s policy=%s"
    (Generators.print_sigma_db (sigma, db))
    (match policy with
    | Chase.Oblivious -> "oblivious"
    | Chase.Restricted -> "restricted")

let arb_case =
  QCheck.make ~print:print_case
    QCheck.Gen.(
      let* sigma = Generators.gen_sigma
      and* db = Generators.gen_db
      and* policy = Generators.gen_policy in
      return (sigma, db, policy))

let prop_fresh_chase_byte_identical =
  QCheck.Test.make
    ~name:
      "store: fresh chase byte-identical across the family (facts, levels, \
       checkpoints, stats, answers)"
    ~count:50 arb_case (fun (sigma, db, policy) ->
      let base = chase_observables ~engine:`Indexed ~policy sigma db in
      List.for_all
        (fun engine -> chase_observables ~engine ~policy sigma db = base)
        (List.tl family))

let prop_naive_equivalent =
  QCheck.Test.make
    ~name:"store: Naive ≍ family up to null renaming, exactly on answers"
    ~count:50 arb_case (fun (sigma, db, policy) ->
      let budget () = Generators.resil_budget () in
      Term.reset_nulls ();
      let naive = Chase.run ~engine:`Naive ~policy ~budget:(budget ()) sigma db in
      let naive_answers =
        List.map
          (fun q ->
            (Engine.Enumerate.ucq ~universe:(Instance.dom db)
               (Chase.index naive) q)
              .Engine.Enumerate.answers)
          Generators.queries
      in
      Term.reset_nulls ();
      let idx = Chase.run ~engine:`Indexed ~policy ~budget:(budget ()) sigma db in
      let idx_answers =
        List.map
          (fun q ->
            (Engine.Enumerate.ucq ~universe:(Instance.dom db) (Chase.index idx)
               q)
              .Engine.Enumerate.answers)
          Generators.queries
      in
      Generators.results_equivalent naive idx && naive_answers = idx_answers)

(* ------------------------------------------------------------------ *)
(* Resume: any boundary, any engine of the family                       *)
(* ------------------------------------------------------------------ *)

let resume_observables ~engine sigma snap =
  let r =
    Chase.resume ~engine ~budget:(Generators.resil_budget ()) sigma snap
  in
  let stats =
    cut_at_histograms
      (Obs.Json.to_string (Obs.Report.to_json (Chase.report ~name:"store" r)))
  in
  ( List.sort Stdlib.compare (Generators.facts_levels r),
    Chase.saturated r,
    Chase.max_level r,
    Chase.outcome r,
    stats )

let arb_resume_case =
  QCheck.make
    ~print:(fun (case, pick) -> Fmt.str "%s pick=%d" (print_case case) pick)
    QCheck.Gen.(
      let* case = QCheck.gen arb_case and* pick = int_range 0 1000 in
      return (case, pick))

let prop_resume_byte_identical =
  QCheck.Test.make
    ~name:"store: resume from any boundary byte-identical across the family"
    ~count:40 arb_resume_case (fun ((sigma, db, policy), pick) ->
      let snaps = Generators.chase_snapshots ~engine:`Indexed ~policy sigma db in
      let snap = List.nth snaps (pick mod List.length snaps) in
      let base = resume_observables ~engine:`Indexed sigma snap in
      List.for_all
        (fun engine -> resume_observables ~engine sigma snap = base)
        (List.tl family))

(* ------------------------------------------------------------------ *)
(* Serve: a maintained store under a mutation log                       *)
(* ------------------------------------------------------------------ *)

(* Weakly-acyclic guarded sigma with existentials: the oblivious chase
   always terminates, so the maintained store accepts mutations, and
   nulls exercise the delete cascade. *)
let wa_sigma =
  [
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "T" [ v "y"; v "x" ] ];
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "B" [ v "x" ] ];
    tgd [ atom "B" [ v "x" ] ] [ atom "U" [ v "x"; v "z" ] ];
  ]

let gen_wa_fact =
  QCheck.Gen.(
    let gc = map (List.nth [ "a"; "b"; "c" ]) (int_range 0 2) in
    let* p = int_range 0 3 in
    match p with
    | 0 ->
        let* a = gc in
        return (fact "A" [ a ])
    | 1 ->
        let* a = gc in
        return (fact "B" [ a ])
    | 2 ->
        let* a = gc and* b = gc in
        return (fact "S" [ a; b ])
    | _ ->
        let* a = gc and* b = gc in
        return (fact "T" [ a; b ]))

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 0 6)
      (map
         (fun (add, f) -> if add then Incr.Insert f else Incr.Delete f)
         (pair bool gen_wa_fact)))

let print_op = function
  | Incr.Insert f -> Fmt.str "+%a" Fact.pp f
  | Incr.Delete f -> Fmt.str "-%a" Fact.pp f

let serve_observables ~engine db ops =
  Term.reset_nulls ();
  let t = Incr.create ~engine wa_sigma db in
  let effects = List.map (fun op -> Incr.apply t op) ops in
  let facts = List.sort Stdlib.compare (Instance.facts (Incr.instance t)) in
  let ck = Obs.Json.to_string (Resil.Checkpoint.to_json (Incr.checkpoint t)) in
  let counters =
    List.sort Stdlib.compare (Obs.Metrics.counters (Incr.metrics t))
  in
  (facts, effects, ck, counters)

let arb_serve_case =
  QCheck.make
    ~print:(fun (db, ops) ->
      Fmt.str "D=%a ops=[%s]" Instance.pp db
        (String.concat "; " (List.map print_op ops)))
    QCheck.Gen.(
      let* db = Generators.gen_db and* ops = gen_ops in
      return (db, ops))

let prop_serve_byte_identical =
  QCheck.Test.make
    ~name:
      "store: serve (maintained store) byte-identical across the family \
       (facts, effects, checkpoint, counters)"
    ~count:40 arb_serve_case (fun (db, ops) ->
      let base = serve_observables ~engine:`Indexed db ops in
      List.for_all
        (fun engine -> serve_observables ~engine db ops = base)
        (List.tl family))

(* ------------------------------------------------------------------ *)
(* Fixed oracles: literals pinned against the pre-columnar store        *)
(* ------------------------------------------------------------------ *)

(* Σ = {A(x) → ∃y S(x,y); S(x,y) → A(y)}: non-terminating, cut by the
   level budget — exercises null invention at every level. *)
let unit_sigma =
  [
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
  ]

let unit_db = Instance.of_facts [ fact "A" [ "a" ] ]

let render_facts fl =
  String.concat "\n"
    (List.map (fun (f, l) -> Fmt.str "%d %a" l Fact.pp f) fl)

let pinned ~engine ~policy sigma db =
  let fl, saturated, max_level, _, stats, trace, _ =
    chase_observables ~engine ~policy sigma db
  in
  ( Fmt.str "saturated=%b max_level=%d\n%s" saturated max_level
      (render_facts fl),
    (match List.rev trace with last :: _ -> last | [] -> ""),
    stats )

(* The expected literals below were produced by the hash-of-lists store
   (PR 6 tree) and must never drift: null ids, levels, checkpoint bytes
   and counters are all representation-observable. *)
let test_pinned_oblivious () =
  let got_facts, got_ck, got_stats =
    pinned ~engine:`Indexed ~policy:Chase.Oblivious unit_sigma unit_db
  in
  Alcotest.(check string) "facts/levels literal"
    "saturated=false max_level=6\n\
     0 A(a)\n\
     2 A(_:n1)\n\
     4 A(_:n2)\n\
     6 A(_:n3)\n\
     1 S(a,_:n1)\n\
     3 S(_:n1,_:n2)\n\
     5 S(_:n2,_:n3)"
    got_facts;
  Alcotest.(check string) "final checkpoint literal"
    {|{"schema":"guarded-chase-checkpoint","version":1,"engine":"indexed","policy":"oblivious","level":6,"saturated":false,"null_count":3,"triggers_fired":6,"triggers_dismissed":0,"counters":{"index.duplicates":0,"index.inserts":7,"index.probes":0,"index.removes":0,"joiner.backtracks":0,"joiner.candidates":6},"facts":[{"p":"A","l":0,"a":["a"]},{"p":"S","l":1,"a":["a",{"n":1}]},{"p":"A","l":2,"a":[{"n":1}]},{"p":"S","l":3,"a":[{"n":1},{"n":2}]},{"p":"A","l":4,"a":[{"n":2}]},{"p":"S","l":5,"a":[{"n":2},{"n":3}]},{"p":"A","l":6,"a":[{"n":3}]}]}|}
    got_ck;
  Alcotest.(check string) "stats literal"
    {|{"name":"store","outcome":{"status":"partial","reason":"max_levels","limit":6},"saturated":false,"max_level":6,"facts":7,"facts_per_level":[1,1,1,1,1,1],"triggers_fired":6,"triggers_dismissed":0,"counters":{"index.duplicates":0,"index.inserts":7,"index.probes":0,"index.removes":0,"joiner.backtracks":0,"joiner.candidates":6}|}
    got_stats

let guarded_sigma =
  [
    tgd [ atom "A" [ v "x" ] ] [ atom "S" [ v "x"; v "y" ] ];
    tgd
      [ atom "S" [ v "x"; v "y" ]; atom "A" [ v "x" ] ]
      [ atom "B" [ v "x" ] ];
    tgd [ atom "B" [ v "x" ] ] [ atom "T" [ v "x"; v "z" ] ];
  ]

let guarded_db = Instance.of_facts [ fact "A" [ "a" ]; fact "S" [ "a"; "b" ] ]

let test_pinned_restricted () =
  let got_facts, got_ck, got_stats =
    pinned ~engine:`Indexed ~policy:Chase.Restricted guarded_sigma guarded_db
  in
  Alcotest.(check string) "facts/levels literal"
    "saturated=true max_level=2\n0 A(a)\n1 B(a)\n0 S(a,b)\n2 T(a,_:n1)"
    got_facts;
  Alcotest.(check string) "final checkpoint literal"
    {|{"schema":"guarded-chase-checkpoint","version":1,"engine":"indexed","policy":"restricted","level":2,"saturated":true,"null_count":1,"triggers_fired":2,"triggers_dismissed":1,"counters":{"index.duplicates":0,"index.inserts":4,"index.probes":5,"index.removes":0,"joiner.backtracks":0,"joiner.candidates":7},"facts":[{"p":"A","l":0,"a":["a"]},{"p":"S","l":0,"a":["a","b"]},{"p":"B","l":1,"a":["a"]},{"p":"T","l":2,"a":["a",{"n":1}]}]}|}
    got_ck;
  Alcotest.(check string) "stats literal"
    {|{"name":"store","outcome":{"status":"complete"},"saturated":true,"max_level":2,"facts":4,"facts_per_level":[1,1],"triggers_fired":2,"triggers_dismissed":1,"counters":{"index.duplicates":0,"index.inserts":4,"index.probes":5,"index.removes":0,"joiner.backtracks":0,"joiner.candidates":7}|}
    got_stats

(* ------------------------------------------------------------------ *)
(* Store-level semantics the consumers rely on                          *)
(* ------------------------------------------------------------------ *)

(* Posting lists are most-recently-inserted-first, and [Index.remove]
   prunes them in place preserving that order — the discovery order of
   the chase (hence null ids) hangs off this. *)
let test_posting_order_and_remove () =
  let open Engine in
  let f cs = Fact.make "S" (List.map (fun c -> Term.Named c) cs) in
  let idx = Index.create () in
  List.iter
    (fun t -> ignore (Index.insert (f t) idx))
    [ [ "a"; "b" ]; [ "c"; "b" ]; [ "d"; "b" ]; [ "d"; "e" ] ];
  let tuples l =
    List.map (List.map (function Term.Named s -> s | _ -> "?")) l
  in
  Alcotest.(check (list (list string)))
    "posting (S,1,b) most-recent-first"
    [ [ "d"; "b" ]; [ "c"; "b" ]; [ "a"; "b" ] ]
    (tuples (Index.tuples_at idx "S" 1 (Term.Named "b")));
  Alcotest.(check (list (list string)))
    "relation scan most-recent-first"
    [ [ "d"; "e" ]; [ "d"; "b" ]; [ "c"; "b" ]; [ "a"; "b" ] ]
    (tuples (Index.tuples_of idx "S"));
  check "remove present" true (Index.remove (f [ "c"; "b" ]) idx);
  check "remove absent" false (Index.remove (f [ "c"; "b" ]) idx);
  Alcotest.(check (list (list string)))
    "posting pruned in place, order kept"
    [ [ "d"; "b" ]; [ "a"; "b" ] ]
    (tuples (Index.tuples_at idx "S" 1 (Term.Named "b")));
  Alcotest.(check int)
    "count follows" 2
    (Index.count_at idx "S" 1 (Term.Named "b"));
  (* re-insert lands at the front again *)
  ignore (Index.insert (f [ "c"; "b" ]) idx);
  Alcotest.(check (list (list string)))
    "re-insert is most recent"
    [ [ "c"; "b" ]; [ "d"; "b" ]; [ "a"; "b" ] ]
    (tuples (Index.tuples_at idx "S" 1 (Term.Named "b")));
  Alcotest.(check int) "size" 4 (Index.size idx)

(* Regression (mirrors the PR 5 Homomorphism memory-stability shape):
   repeated insert/delete cycles over a fixed fact set in a maintained
   store must not grow the store's capacity — posting lists and any
   future columnar backing have to reclaim or reuse the slots. The
   sigma is existential-free so the churn is pure store traffic (the
   global null supply is out of scope here). *)
let test_serve_capacity_stable () =
  let sigma =
    [
      tgd [ atom "S" [ v "x"; v "y" ] ] [ atom "A" [ v "y" ] ];
      tgd [ atom "A" [ v "x" ] ] [ atom "B" [ v "x" ] ];
    ]
  in
  let db = Instance.of_facts [ fact "S" [ "a"; "b" ] ] in
  Term.reset_nulls ();
  let t = Incr.create sigma db in
  let churn =
    [ fact "S" [ "b"; "c" ]; fact "S" [ "c"; "a" ]; fact "A" [ "c" ] ]
  in
  let cycle () =
    List.iter (fun f -> ignore (Incr.insert t f)) churn;
    List.iter (fun f -> ignore (Incr.delete t f)) churn
  in
  for _ = 1 to 200 do
    cycle ()
  done;
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let cap0 = Engine.Index.capacity_words (Incr.index t) in
  for _ = 1 to 2000 do
    cycle ()
  done;
  Gc.compact ();
  let live1 = (Gc.stat ()).Gc.live_words in
  (* 2000 further cycles insert and retract the same 3 base facts (and
     their consequences); a store that fails to reclaim slots retains
     thousands of words per 1000 cycles *)
  check "insert/delete churn leaves no residue" true (live1 - live0 < 8_000);
  (* and the columnar backing itself must not grow: freed row slots are
     reused, emptied posting vectors dropped *)
  Alcotest.(check int)
    "store capacity unchanged" cap0
    (Engine.Index.capacity_words (Incr.index t))

(* ------------------------------------------------------------------ *)
(* Symtab / Vec units                                                   *)
(* ------------------------------------------------------------------ *)

(* Regrow corner: push across several doublings of the Bigarray backing
   (starting from the minimum capacity), then exercise the order-
   preserving remove and pop at the boundary. *)
let test_vec_regrow () =
  let open Engine in
  let v = Vec.create ~capacity:1 () in
  for i = 0 to 9999 do
    Vec.push v (i * 3)
  done;
  Alcotest.(check int) "length" 10_000 (Vec.length v);
  check "capacity >= length" true (Vec.capacity v >= 10_000);
  check "values survive regrow" true
    (Vec.get v 0 = 0 && Vec.get v 4095 = 4095 * 3 && Vec.get v 4096 = 4096 * 3
   && Vec.get v 9999 = 9999 * 3);
  (* remove exactly at the last-doubling boundary *)
  check "remove boundary value" true (Vec.remove_value v (4096 * 3));
  check "remove absent value" false (Vec.remove_value v (4096 * 3));
  Alcotest.(check int) "shifted left" (4097 * 3) (Vec.get v 4096);
  Alcotest.(check int) "pop returns last" (9999 * 3) (Vec.pop v);
  Alcotest.(check int) "length after" 9_998 (Vec.length v)

(* Interning round-trips, and batch seeding assigns ids independent of
   how the batch was interleaved. *)
let test_symtab_roundtrip () =
  let open Engine in
  let named = List.init 50 (fun i -> Term.Named (Printf.sprintf "c%02d" i)) in
  let nulls = List.init 50 (fun i -> Term.Null (i + 1)) in
  let everything = named @ nulls in
  let t = Symtab.create () in
  List.iter (fun c -> ignore (Symtab.intern t c)) everything;
  check "round-trip" true
    (List.for_all (fun c -> Symtab.extern t (Symtab.intern t c) = c) everything);
  check "find agrees with intern" true
    (List.for_all (fun c -> Symtab.find t c = Some (Symtab.intern t c)) everything);
  Alcotest.(check int) "dense ids" 100 (Symtab.size t);
  check "unknown symbol" true (Symtab.find t (Term.Named "zzz") = None);
  (* null payloads far beyond the dense range force the null-table regrow *)
  let far = Term.Null 100_000 in
  let id = Symtab.intern t far in
  check "null regrow round-trip" true
    (Symtab.extern t id = far && Symtab.find t far = Some id);
  (* seeding: two tables fed the same batch in opposite orders agree *)
  let t1 = Symtab.create () and t2 = Symtab.create () in
  Symtab.seed t1 everything;
  Symtab.seed t2 (List.rev everything);
  check "seeded ids interleaving-independent" true
    (List.for_all (fun c -> Symtab.find t1 c = Symtab.find t2 c) everything);
  (* predicates intern in their own id space *)
  let p = Symtab.intern_pred t "Edge" in
  Alcotest.(check string) "pred round-trip" "Edge" (Symtab.extern_pred t p)

(* Provisional ranges: overlays hand out negative ids disjoint across
   shards, and reconciliation assigns the same canonical ids whatever
   the shard count was. *)
let test_symtab_reconcile () =
  let open Engine in
  let base_syms = List.init 10 (fun i -> Term.Named (Printf.sprintf "b%d" i)) in
  let news =
    List.init 40 (fun i ->
        if i mod 2 = 0 then Term.Named (Printf.sprintf "n%02d" i)
        else Term.Null (i + 500))
  in
  let run shards =
    let t = Symtab.create () in
    Symtab.seed t base_syms;
    let os = Array.init shards (fun s -> Symtab.overlay t ~shard:s ~shards) in
    (* deal the stream round-robin: different shard counts see the same
       symbols in different local orders *)
    let provisional =
      List.mapi (fun i c -> Symtab.overlay_intern os.(i mod shards) c) news
    in
    check "base symbols resolve to base ids" true
      (List.for_all
         (fun c ->
           Symtab.overlay_intern os.(0) c = Option.get (Symtab.find t c))
         base_syms);
    check "provisional ids negative" true (List.for_all (fun i -> i < 0) provisional);
    check "provisional ids disjoint" true
      (List.length (List.sort_uniq compare provisional) = List.length provisional);
    check "overlay extern round-trips provisional ids" true
      (List.for_all2
         (fun pid i -> Symtab.overlay_extern os.(i mod shards) pid = List.nth news i)
         provisional
         (List.init (List.length news) Fun.id));
    Symtab.reconcile t os;
    (news, List.map (fun c -> Option.get (Symtab.find t c)) news, t)
  in
  let _, ids1, _ = run 1 in
  let _, ids2, _ = run 2 in
  let _, ids4, _ = run 4 in
  check "canonical ids independent of shard count (1 vs 2)" true (ids1 = ids2);
  check "canonical ids independent of shard count (2 vs 4)" true (ids2 = ids4);
  (* reconciled symbols extern back to themselves *)
  let _, ids, t = run 3 in
  check "reconciled round-trip" true
    (List.for_all2 (fun c id -> Symtab.extern t id = c) news ids)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fresh_chase_byte_identical;
      prop_naive_equivalent;
      prop_resume_byte_identical;
      prop_serve_byte_identical;
    ]

let () =
  Alcotest.run "store"
    [
      ( "oracle",
        [
          Alcotest.test_case "pinned oblivious chase" `Quick
            test_pinned_oblivious;
          Alcotest.test_case "pinned restricted chase" `Quick
            test_pinned_restricted;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "posting order and remove" `Quick
            test_posting_order_and_remove;
          Alcotest.test_case "serve capacity stable" `Quick
            test_serve_capacity_stable;
        ] );
      ( "units",
        [
          Alcotest.test_case "vec regrow boundary" `Quick test_vec_regrow;
          Alcotest.test_case "symtab intern/extern round-trip" `Quick
            test_symtab_roundtrip;
          Alcotest.test_case "symtab shard-range reconciliation" `Quick
            test_symtab_reconcile;
        ] );
      ("equivalence", qcheck_tests);
    ]
