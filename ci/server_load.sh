#!/bin/sh
# Server load/soak: saturate one generated university store, then serve
# the same mixed request file under --workers 1 and --workers 4. The
# replies carry request ids and each line is canonical per-request
# bytes, so worker scheduling may permute the transcript but never
# change a line: the sorted transcripts must be byte-identical. The run
# must stay clean — every request answered, zero errors, zero
# quarantine, exit 0.
#
# Each run also reports the worker domains' allocation (the summed
# Gc minor/major word deltas the daemon records per worker), and the
# run fails if minor allocation per served request regresses past the
# gate: multicore serving throughput is bounded by minor allocation
# (every domain's minor-GC barrier stops all domains), so words per
# request is the scaling signal worth pinning, and it is deterministic
# enough to gate on where qps on a shared CI box is not.
#
# Run from the repository root:  sh ci/server_load.sh
# Environment:
#   SERVER_LOAD_REQUESTS=200   request count (default 2000; ci/check.sh
#                              sets a small value as a smoke)
#   SERVER_LOAD_MAX_WORDS=6000 gate: max minor words per served request
set -eu

cd "$(dirname "$0")/.."

CLI=_build/default/bin/guarded_cli.exe
[ -x "$CLI" ] || { echo "server_load: build first (dune build)"; exit 1; }

N=${SERVER_LOAD_REQUESTS:-2000}
MAXW=${SERVER_LOAD_MAX_WORDS:-6000}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# A lubm-flavoured store, big enough that scans return hundreds of
# tuples: 4 departments x 12 professors x 30 students.
PROG="$TMP/load.gd"
{
  echo "prof(X) -> teaches(X,C)."
  echo "teaches(X,C) -> course(C)."
  echo "course(C) -> offeredby(C,D)."
  echo "offeredby(C,D) -> dept(D)."
  echo "teaches(X,C) -> faculty(X)."
  echo "student(S) -> takes(S,C)."
  echo "takes(S,C) -> course(C)."
  echo "student(S) -> advisedby(S,A)."
  echo "advisedby(S,A) -> faculty(A)."
  echo "memberof(X,D) -> dept(D)."
  d=0
  while [ "$d" -lt 4 ]; do
    p=0
    while [ "$p" -lt 12 ]; do
      echo "prof(prof_${d}_${p})."
      echo "memberof(prof_${d}_${p},dept_${d})."
      echo "teaches(prof_${d}_${p},course_${d}_${p})."
      p=$((p + 1))
    done
    s=0
    while [ "$s" -lt 30 ]; do
      echo "student(stud_${d}_${s})."
      echo "takes(stud_${d}_${s},course_${d}_0)."
      s=$((s + 1))
    done
    d=$((d + 1))
  done
} > "$PROG"

# The mixed request file: point scans, counts, a union, joins — cycled in
# a fixed order, with comment noise that must get no reply.
REQ="$TMP/requests.txt"
i=0
while [ "$i" -lt "$N" ]; do
  case $((i % 8)) in
    0) echo "answers q(X) :- prof(X)." ;;
    1) echo "count q(X) :- faculty(X)." ;;
    2) echo "answers q(X,C) :- teaches(X,C)." ;;
    3) echo "count q(S) :- student(S). q(S) :- prof(S)." ;;
    4) echo "answers q(S,C) :- takes(S,C), course(C)." ;;
    5) echo "count q(D) :- dept(D)." ;;
    6) echo "answers q(P,D) :- prof(P), memberof(P,D)." ;;
    7) echo "% soak noise: comments get no reply" ;;
  esac
  i=$((i + 1))
done > "$REQ"
expected=$(grep -cv '^%' "$REQ")

serve() {
  workers=$1
  "$CLI" server "$PROG" --workers "$workers" --stats "$TMP/w$workers.stats.json" \
    < "$REQ" > "$TMP/w$workers.out" 2> "$TMP/w$workers.err" || {
    echo "server_load: --workers $workers exited $? ($(cat "$TMP/w$workers.err"))"
    exit 1
  }
  grep -q "(.* ok, .* partial, 0 error(s), 0 quarantined)" "$TMP/w$workers.out" || {
    echo "server_load: --workers $workers summary reports errors or quarantine"
    tail -1 "$TMP/w$workers.out"
    exit 1
  }
  grep -v '^%' "$TMP/w$workers.out" > "$TMP/w$workers.replies"
  got=$(wc -l < "$TMP/w$workers.replies")
  [ "$got" -eq "$expected" ] || {
    echo "server_load: --workers $workers answered $got of $expected requests"
    exit 1
  }
  sort "$TMP/w$workers.replies" > "$TMP/w$workers.sorted"
  # allocation accounting: summed worker-domain Gc deltas from the
  # stats report, gated per served request
  minor=$(grep -o '"server.minor_words":[0-9]*' "$TMP/w$workers.stats.json" \
    | head -1 | cut -d: -f2)
  major=$(grep -o '"server.major_words":[0-9]*' "$TMP/w$workers.stats.json" \
    | head -1 | cut -d: -f2)
  [ -n "$minor" ] || {
    echo "server_load: --workers $workers stats report lacks server.minor_words"
    exit 1
  }
  per=$((minor / expected))
  echo "server_load: workers $workers: $minor minor words, $major major words ($per minor words/request)"
  [ "$per" -le "$MAXW" ] || {
    echo "server_load: --workers $workers allocates $per minor words/request (gate: $MAXW)"
    exit 1
  }
}

serve 1
serve 4

cmp -s "$TMP/w1.sorted" "$TMP/w4.sorted" || {
  echo "server_load: sorted transcripts differ between --workers 1 and 4"
  diff "$TMP/w1.sorted" "$TMP/w4.sorted" | head -20
  exit 1
}

echo "server_load: OK ($expected requests, workers 1 vs 4 byte-identical sorted transcripts)"
