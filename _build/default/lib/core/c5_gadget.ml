(** The Appendix C.5 gadget: guarded ontologies forcing exponentially long
    structures through high-arity auxiliaries.

    Appendix C.5 shows that for [k < ar(T) − 1] UCQk-approximations
    misbehave: an ontology over a 6-ary auxiliary [G] makes the chase of a
    single ternary atom produce an [S]-path of length exponential in the
    ontology (a binary counter counts chase levels), so any equivalent
    OMQ from (G, UCQ₁) needs a CQ with exponentially many atoms
    (Lemma C.8).

    This module builds the counter ontology for a parameter [n]: from
    [T1(c1,c2,c3)] the chase produces an [S]-path of exactly [2^n − 1]
    edges, from [T2] one of [2^n − 2] — two databases that every short
    tree-like query confuses but the exponentially long path query
    separates. The transcription of Σ₁ in the paper is partly garbled (and
    Σ₂ is "left to the reader"), so the rules here are a clean
    reconstruction of the same counter: bit predicates [B0_i]/[B1_i] on
    ternary nodes, one child per non-maximal counter value (via a [Step]
    trigger so the oblivious chase stays a path), increment and copy rules
    guarded by the 6-ary [G]. *)

open Relational

let v = Term.var

let atom p args = Atom.make p args

let b bit i = Printf.sprintf "B%d_%d" bit i

let xs = [ v "x1"; v "x2"; v "x3" ]
let ys = [ v "y1"; v "y2"; v "y3" ]
let g_atom = atom "G" (xs @ ys)

(** [ontology ~n] — the counter ontology (guarded; 6-ary maximum arity). *)
let ontology ~n =
  let module Tgd = Tgds.Tgd in
  let bit_x bit i = atom (b bit i) xs in
  let bit_y bit i = atom (b bit i) ys in
  (* seeds: T1 starts the counter at 0, T2 at 1 *)
  let seeds =
    List.init n (fun i -> Tgd.make ~body:[ atom "T1" xs ] ~head:[ bit_x 0 i ])
    @ (Tgd.make ~body:[ atom "T2" xs ] ~head:[ bit_x 1 0 ]
       :: List.init (n - 1) (fun i ->
              Tgd.make ~body:[ atom "T2" xs ] ~head:[ bit_x 0 (i + 1) ]))
  in
  (* a single Step trigger per node with some zero bit *)
  let steps =
    List.init n (fun i -> Tgd.make ~body:[ bit_x 0 i ] ~head:[ atom "Step" xs ])
  in
  let child =
    [ Tgd.make ~body:[ atom "Step" xs ]
        ~head:[ g_atom; atom "S" [ v "x1"; v "y1" ] ] ]
  in
  (* increment at flip position i: bits 0..i-1 are 1, bit i is 0 *)
  let ones_below i = List.init i (fun j -> bit_x 1 j) in
  let increments =
    List.init n (fun i ->
        Tgd.make
          ~body:((g_atom :: ones_below i) @ [ bit_x 0 i ])
          ~head:(bit_y 1 i :: List.init i (fun j -> bit_y 0 j)))
  in
  (* copy bits above the flip position *)
  let copies =
    List.concat
      (List.init n (fun i ->
           List.concat
             (List.init (n - i - 1) (fun d ->
                  let j = i + d + 1 in
                  List.map
                    (fun bitval ->
                      Tgd.make
                        ~body:
                          ((g_atom :: ones_below i)
                          @ [ bit_x 0 i; bit_x bitval j ])
                        ~head:[ bit_y bitval j ])
                    [ 0; 1 ]))))
  in
  seeds @ steps @ child @ increments @ copies

(** The seed databases [D1 = {T1(c1,c2,c3)}] and [D2 = {T2(c1,c2,c3)}] of
    Lemma C.8. *)
let database which =
  let t = match which with `T1 -> "T1" | `T2 -> "T2" in
  Instance.of_facts
    [ Fact.make t [ Term.Named "c1"; Term.Named "c2"; Term.Named "c3" ] ]

(** The length of the longest simple [S]-path in an instance (the chase of
    the gadget is a path, so this is its length). *)
let s_path_length inst =
  let edges = Instance.tuples_of "S" inst in
  let succ = Hashtbl.create 16 in
  List.iter
    (fun t -> match t with [ a; c ] -> Hashtbl.replace succ a c | _ -> ())
    edges;
  let targets =
    List.filter_map (fun t -> match t with [ _; c ] -> Some c | _ -> None) edges
  in
  let sources =
    List.filter_map (fun t -> match t with [ a; _ ] -> Some a | _ -> None) edges
  in
  let start = List.filter (fun a -> not (List.mem a targets)) sources in
  let rec walk len node =
    match Hashtbl.find_opt succ node with
    | Some next -> walk (len + 1) next
    | None -> len
  in
  List.fold_left (fun acc a -> max acc (walk 0 a)) 0 start

(** The separating path query: an [S]-path of [2^n − 1] edges (treewidth 1
    — yet exponential in the gadget's size, cf. Lemma C.8). *)
let separating_query ~n = Workload.path_cq ~pred:"S" ((1 lsl n) - 1)
