(** Diversifications of databases (§6.1, Example 6.3, Appendix D.2):
    untangling atoms by replacing incidental shared constants with fresh
    isolated copies, the ⪯ preorder, unraveling attachment ([D⁺]) and a
    greedy ⪯-minimization preserving a given property. *)

open Relational

type t = {
  original : Instance.t;
  diversified : Instance.t;
  up : Term.const Term.ConstMap.t;  (** fresh constant ↦ original ([·↑]) *)
}

(** The identity diversification. *)
val identity : Instance.t -> t

(** [up_const d c] — [c↑]. *)
val up_const : t -> Term.const -> Term.const

(** [·↑] maps the diversification back onto the original. *)
val verify : t -> bool

(** Replace the constant at [position] of one fact occurrence by a fresh
    isolated copy. *)
val split : t -> Fact.t -> int -> t

(** The preorder [D₁ ⪯ D₂] of Appendix D.2. *)
val preorder : t -> t -> bool

(** [D⁺]: attach finite guarded-unraveling pieces at every atom. *)
val with_unravelings : ?depth:int -> t -> Instance.t

(** Greedy ⪯-minimal diversification with [holds D₁⁺]; constants of
    [protect] are never split. *)
val minimize :
  ?depth:int ->
  holds:(Instance.t -> bool) ->
  protect:Term.ConstSet.t ->
  Instance.t ->
  t
