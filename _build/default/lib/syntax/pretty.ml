(** Pretty-printer rendering programs back into the surface syntax
    (round-trips through {!Parser.parse}). *)

open Relational

let pp_term ppf = function
  | Term.Const (Term.Named s) -> Fmt.string ppf s
  | Term.Const (Term.Null n) -> Fmt.pf ppf "null_%d" n
  | Term.Var x -> Fmt.string ppf (String.capitalize_ascii x)

let pp_atom ppf a =
  if Atom.args a = [] then Fmt.string ppf (Atom.pred a)
  else Fmt.pf ppf "%s(%a)" (Atom.pred a) Fmt.(list ~sep:(any ",") pp_term) (Atom.args a)

let pp_atoms = Fmt.(list ~sep:(any ", ") pp_atom)

let pp_tgd ppf t =
  let body = Tgds.Tgd.body t in
  if body = [] then Fmt.pf ppf "true -> %a." pp_atoms (Tgds.Tgd.head t)
  else Fmt.pf ppf "%a -> %a." pp_atoms body pp_atoms (Tgds.Tgd.head t)

let pp_fact ppf f = Fmt.pf ppf "%a." pp_atom (Fact.to_atom f)

let pp_query name ppf (q : Cq.t) =
  Fmt.pf ppf "%s(%a) :- %a." name
    Fmt.(list ~sep:(any ",") string)
    (List.map String.capitalize_ascii (Cq.answer q))
    pp_atoms (Cq.atoms q)

let pp_program ppf (p : Parser.program) =
  let pp_decl ppf (name, ar) = Fmt.pf ppf "%s/%d." name ar in
  Fmt.pf ppf "@[<v>%% schema@,%a@,%% tgds@,%a@,%% facts@,%a@,%% queries@,%a@]"
    Fmt.(list ~sep:cut pp_decl)
    (Schema.bindings p.Parser.schema)
    Fmt.(list ~sep:cut pp_tgd)
    p.Parser.tgds
    Fmt.(list ~sep:cut pp_fact)
    p.Parser.facts
    Fmt.(list ~sep:cut (fun ppf (name, u) ->
        Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut (pp_query name)) (Ucq.disjuncts u)))
    p.Parser.queries
