(** Chase checkpoints: durable serialisation of {!Tgds.Chase.snapshot}.

    The on-disk form is deterministic {!Obs.Json} with a pinned key order
    and a versioned schema header, so checkpoints are golden-testable and
    [save → load → save] is byte-identical:

    {v
    {"schema": "guarded-chase-checkpoint", "version": 1,
     "engine": "indexed" | "naive" | "parallel",
     "policy": "oblivious" | "restricted",
     "level": int, "saturated": bool, "null_count": int,
     "triggers_fired": int, "triggers_dismissed": int,
     "counters": {name: int, …},          (* sorted by name *)
     "facts": [{"p": pred, "l": s-level, "a": [const, …]}, …]}
    v}

    Facts are sorted by (s-level, fact); a constant is a JSON string for
    a named constant and [{"n": id}] for a labelled null. *)

type t = Tgds.Chase.snapshot

val schema : string
val version : int

val to_json : t -> Obs.Json.t

(** [of_json j] — inverse of {!to_json}; [Error] on an unknown schema or
    version, or any malformed field. *)
val of_json : Obs.Json.t -> (t, string) result

(** [save path t] — write the checkpoint (single line + newline),
    atomically via a temporary file next to [path]. *)
val save : string -> t -> unit

(** [load path] — read and decode; [Error] on IO or decode failure. *)
val load : string -> (t, string) result
