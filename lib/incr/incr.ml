(** Incremental chase maintenance; see the interface for the contract.

    The ledger is three hash tables over one mutable [derivation] record
    per fired trigger: [derivs] maps a fact to the derivations producing
    it, [uses] maps a fact to the derivations consuming it, [fired] maps
    a trigger key to its (live) derivation. A derivation dies when any of
    its body facts is over-deleted; its key leaves [fired] at the same
    moment, so the trigger may legitimately refire during repair.
    Dead records are pruned lazily from the per-fact lists.

    Soundness of running {!Engine.Saturate.continue} with a fresh
    trigger-key table after every mutation: a trigger enumerated by the
    delta fixpoint has a body fact in the transitive delta; for an insert
    that fact never existed before (so the trigger never fired), and for
    a delete it was over-deleted first (so the trigger's old firing was
    invalidated and removed from [fired]). Either way the firing is not a
    duplicate. *)

open Relational

type key = int * Term.const option list

type derivation = {
  d_key : key;
  d_body : Fact.t list;  (* grounded body, deduplicated, sorted *)
  d_outs : Fact.t list;  (* grounded head, deduplicated, sorted *)
  mutable d_live : bool;
}

type op = Insert of Fact.t | Delete of Fact.t

type effect = {
  e_op : op;
  e_noop : bool;
  e_repaired : int;
  e_overdeleted : int;
  e_rederived : int;
  e_deleted : int;
}

type t = {
  rules : Engine.Saturate.rule list;
  idx : Engine.Index.t;
  level_of : (Fact.t, int) Hashtbl.t;
  base : (Fact.t, unit) Hashtbl.t;
  derivs : (Fact.t, derivation list ref) Hashtbl.t;
  uses : (Fact.t, derivation list ref) Hashtbl.t;
  fired : (key, derivation) Hashtbl.t;
  mutable level : int;  (* highest pass number handed to [continue] *)
  mutable sat : bool;
  mutable dirty : bool;  (* a mutation started changing state and died *)
  (* maintenance counters, registered on the index's metrics registry so
     they travel with the usual report plumbing *)
  c_inserts : Obs.Metrics.counter;
  c_deletes : Obs.Metrics.counter;
  c_noops : Obs.Metrics.counter;
  c_repaired : Obs.Metrics.counter;
  c_overdeleted : Obs.Metrics.counter;
  c_rederived : Obs.Metrics.counter;
  c_deleted : Obs.Metrics.counter;
}

let saturated t = t.sat
let dirty t = t.dirty

let ensure_saturated t =
  if not t.sat then invalid_arg "Incr: store is not saturated"

(* A mutation that raised after its first state change leaves the store
   between consistent states; retrying on it is unsound. Callers must
   rebuild (e.g. {!of_checkpoint}) instead. *)
let ensure_clean t =
  if t.dirty then invalid_arg "Incr: store is dirty (interrupted mutation)"

(* ---- ledger primitives ------------------------------------------------ *)

let push tbl f d =
  match Hashtbl.find_opt tbl f with
  | Some r -> r := d :: !r
  | None -> Hashtbl.replace tbl f (ref [ d ])

(* Live derivations of [f] in [tbl], pruning dead records in passing. *)
let live tbl f =
  match Hashtbl.find_opt tbl f with
  | None -> []
  | Some r ->
      let l = List.filter (fun d -> d.d_live) !r in
      if l = [] then Hashtbl.remove tbl f else r := l;
      l

let record ~derivs ~uses ~fired (fir : Engine.Saturate.firing) =
  let body = List.sort_uniq Fact.compare fir.Engine.Saturate.fire_body in
  let outs =
    List.sort_uniq Fact.compare
      (List.map fst fir.Engine.Saturate.fire_outs)
  in
  let d =
    { d_key = fir.Engine.Saturate.fire_key; d_body = body; d_outs = outs;
      d_live = true }
  in
  Hashtbl.replace fired d.d_key d;
  List.iter (fun f -> push uses f d) body;
  List.iter (fun f -> push derivs f d) outs

let kill t d =
  d.d_live <- false;
  (match Hashtbl.find_opt t.fired d.d_key with
  | Some d' when d' == d -> Hashtbl.remove t.fired d.d_key
  | _ -> ())

(* ---- construction ----------------------------------------------------- *)

let check_engine : Tgds.Chase.engine -> unit = function
  | `Naive -> invalid_arg "Incr.create: maintenance requires an indexed engine"
  | `Indexed | `Parallel _ -> ()

let create ?(engine = `Indexed) ?max_level ?obs sigma db =
  check_engine engine;
  let derivs = Hashtbl.create 1024
  and uses = Hashtbl.create 1024
  and fired = Hashtbl.create 1024 in
  let r =
    Tgds.Chase.run ~engine ~policy:Tgds.Chase.Oblivious ?max_level ?obs
      ~on_fire:(record ~derivs ~uses ~fired)
      sigma db
  in
  let er =
    match Tgds.Chase.engine_result r with
    | Some er -> er
    | None -> assert false (* indexed family always has one *)
  in
  let base = Hashtbl.create (Instance.size db) in
  Instance.iter (fun f -> Hashtbl.replace base f ()) db;
  let idx = Tgds.Chase.index r in
  let m = Engine.Index.metrics idx in
  {
    rules = List.map (fun t -> Engine.Saturate.{ body = Tgds.Tgd.body t; head = Tgds.Tgd.head t }) sigma;
    idx;
    level_of = er.Engine.Saturate.level_of;
    base;
    derivs;
    uses;
    fired;
    level = Tgds.Chase.max_level r;
    sat = Tgds.Chase.saturated r;
    dirty = false;
    c_inserts = Obs.Metrics.counter m "incr.inserts";
    c_deletes = Obs.Metrics.counter m "incr.deletes";
    c_noops = Obs.Metrics.counter m "incr.noops";
    c_repaired = Obs.Metrics.counter m "incr.repaired";
    c_overdeleted = Obs.Metrics.counter m "incr.overdeleted";
    c_rederived = Obs.Metrics.counter m "incr.rederived";
    c_deleted = Obs.Metrics.counter m "incr.deleted";
  }

(* ---- the delta fixpoint over the live store --------------------------- *)

(* Run [Saturate.continue] from [delta] (already inserted into the index
   with levels set), recording new derivations. Returns the number of
   facts the fixpoint added. *)
let propagate ?obs t delta =
  if delta = [] then 0
  else begin
    let r =
      Engine.Saturate.continue ~policy:Engine.Saturate.Oblivious
        ~engine:Engine.Saturate.Indexed ?obs
        ~on_fire:(record ~derivs:t.derivs ~uses:t.uses ~fired:t.fired)
        t.rules ~index:t.idx ~level_of:t.level_of ~level:t.level delta
    in
    t.level <- r.Engine.Saturate.max_level;
    List.fold_left ( + ) 0 r.Engine.Saturate.facts_per_level
  end

(* ---- mutations -------------------------------------------------------- *)

let fact_attr f = Obs.Json.String (Fmt.str "%a" Fact.pp f)

let insert ?obs t f =
  ensure_saturated t;
  ensure_clean t;
  (* probe before the first state change: an injected fault here leaves
     the store clean, so retrying the mutation is sound *)
  Obs.Probe.hit "incr.insert";
  let span = Option.map (fun p -> Obs.Span.enter p "insert") obs in
  Option.iter (fun s -> Obs.Span.set s "fact" (fact_attr f)) span;
  let eff =
    if Hashtbl.mem t.base f then begin
      Obs.Metrics.incr t.c_noops;
      { e_op = Insert f; e_noop = true; e_repaired = 0; e_overdeleted = 0;
        e_rederived = 0; e_deleted = 0 }
    end
    else begin
      Obs.Metrics.incr t.c_inserts;
      t.dirty <- true;
      Hashtbl.replace t.base f ();
      let repaired =
        if Engine.Index.mem f t.idx then 0
          (* already derivable: it gains base membership, nothing fires —
             every trigger over the existing facts has fired already *)
        else begin
          ignore (Engine.Index.insert f t.idx);
          Hashtbl.replace t.level_of f 0;
          1 + propagate ?obs:span t [ f ]
        end
      in
      Obs.Metrics.add t.c_repaired repaired;
      t.dirty <- false;
      { e_op = Insert f; e_noop = false; e_repaired = repaired;
        e_overdeleted = 0; e_rederived = 0; e_deleted = 0 }
    end
  in
  Option.iter
    (fun s ->
      Obs.Span.set s "repaired" (Obs.Json.Int eff.e_repaired);
      Obs.Span.exit s)
    span;
  eff

(* Canonical-ish level of a re-derived fact: base facts are level 0,
   others sit one above their cheapest surviving derivation. Live
   derivations never lost a body fact, so every body level is present. *)
let relevel t f =
  if Hashtbl.mem t.base f then 0
  else
    List.fold_left
      (fun acc d ->
        let bl =
          List.fold_left
            (fun m g ->
              max m (match Hashtbl.find_opt t.level_of g with Some l -> l | None -> 0))
            0 d.d_body
        in
        min acc (bl + 1))
      max_int (live t.derivs f)

let delete ?obs t f =
  ensure_saturated t;
  ensure_clean t;
  Obs.Probe.hit "incr.delete";
  let span = Option.map (fun p -> Obs.Span.enter p "delete") obs in
  Option.iter (fun s -> Obs.Span.set s "fact" (fact_attr f)) span;
  let eff =
    if not (Hashtbl.mem t.base f) then begin
      Obs.Metrics.incr t.c_noops;
      { e_op = Delete f; e_noop = true; e_repaired = 0; e_overdeleted = 0;
        e_rederived = 0; e_deleted = 0 }
    end
    else begin
      Obs.Metrics.incr t.c_deletes;
      t.dirty <- true;
      Hashtbl.remove t.base f;
      (* Phase 1: over-delete. Retract [f] and, transitively, every fact
         produced by a derivation that consumed a retracted fact. The
         retracted set is order-independent (a closure), so the phases
         below are deterministic after sorting. *)
      let over = ref [] in
      let stack = ref [ f ] in
      while !stack <> [] do
        let g = List.hd !stack in
        stack := List.tl !stack;
        if Engine.Index.remove g t.idx then begin
          over := g :: !over;
          Hashtbl.remove t.level_of g;
          List.iter
            (fun d ->
              kill t d;
              List.iter (fun o -> stack := o :: !stack) d.d_outs)
            (live t.uses g);
          Hashtbl.remove t.uses g
        end
      done;
      let over = List.sort Fact.compare !over in
      let overdeleted = List.length over in
      (* Phase 2: re-derive. A retracted fact comes straight back when it
         is still base, or still carries a live derivation (one whose
         body never touched the retracted set). *)
      let red =
        List.filter
          (fun g -> Hashtbl.mem t.base g || live t.derivs g <> [])
          over
      in
      List.iter
        (fun g ->
          ignore (Engine.Index.insert g t.idx);
          Hashtbl.replace t.level_of g (relevel t g))
        red;
      (* Ledger entries of facts that stayed out hold only dead records. *)
      List.iter
        (fun g ->
          if not (Engine.Index.mem g t.idx) then begin
            Hashtbl.remove t.derivs g;
            Hashtbl.remove t.uses g
          end)
        over;
      (* Phase 3: propagate. The re-inserted facts are the delta; the
         invalidated triggers whose bodies survived refire here (and may
         resurrect more of the retracted set, with fresh nulls where the
         original derivation passed through an existential). *)
      let repaired = propagate ?obs:span t red in
      let deleted =
        List.length (List.filter (fun g -> not (Engine.Index.mem g t.idx)) over)
      in
      Obs.Metrics.add t.c_overdeleted overdeleted;
      Obs.Metrics.add t.c_rederived (List.length red);
      Obs.Metrics.add t.c_repaired repaired;
      Obs.Metrics.add t.c_deleted deleted;
      t.dirty <- false;
      { e_op = Delete f; e_noop = false; e_repaired = repaired;
        e_overdeleted = overdeleted; e_rederived = List.length red;
        e_deleted = deleted }
    end
  in
  Option.iter
    (fun s ->
      Obs.Span.set s "overdeleted" (Obs.Json.Int eff.e_overdeleted);
      Obs.Span.set s "rederived" (Obs.Json.Int eff.e_rederived);
      Obs.Span.set s "repaired" (Obs.Json.Int eff.e_repaired);
      Obs.Span.set s "deleted" (Obs.Json.Int eff.e_deleted);
      Obs.Span.exit s)
    span;
  eff

let apply ?obs t = function
  | Insert f -> insert ?obs t f
  | Delete f -> delete ?obs t f

(* ---- views ------------------------------------------------------------ *)

let instance t = Engine.Index.to_instance t.idx
let index t = t.idx
let size t = Engine.Index.size t.idx
let base_size t = Hashtbl.length t.base
let base t = Hashtbl.fold (fun f () acc -> Instance.add_fact f acc) t.base Instance.empty
let support_count t f = List.length (live t.derivs f)
let metrics t = Engine.Index.metrics t.idx

(* ---- checkpointing ---------------------------------------------------- *)

(* Canonical s-levels: minimum derivation depth over the live ledger,
   base facts at 0. This equals the level the level-wise chase assigns —
   the oblivious chase fires every trigger at the earliest pass its body
   is complete, so a fact's s-level is [min] over its producing triggers
   of [1 + max body level]. Monotone decreasing fixpoint; terminates
   because levels only shrink. *)
let canonical_levels t =
  let lev = Hashtbl.create (size t) in
  Hashtbl.iter (fun f () -> Hashtbl.replace lev f 0) t.base;
  let ds = Hashtbl.fold (fun _ d acc -> d :: acc) t.fired [] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        let bl =
          List.fold_left
            (fun acc g ->
              match (acc, Hashtbl.find_opt lev g) with
              | Some m, Some l -> Some (max m l)
              | _ -> None)
            (Some 0) d.d_body
        in
        match bl with
        | None -> () (* some body level still unknown this round *)
        | Some m ->
            List.iter
              (fun o ->
                match Hashtbl.find_opt lev o with
                | Some cur when cur <= m + 1 -> ()
                | _ ->
                    Hashtbl.replace lev o (m + 1);
                    changed := true)
              d.d_outs)
      ds
  done;
  lev

let checkpoint t : Tgds.Chase.snapshot =
  ensure_saturated t;
  let lev = canonical_levels t in
  let snap_facts =
    Hashtbl.fold
      (fun f stored acc ->
        let l =
          match Hashtbl.find_opt lev f with Some l -> l | None -> stored
        in
        (f, l) :: acc)
      t.level_of []
  in
  let snap_level = List.fold_left (fun acc (_, l) -> max acc l) 0 snap_facts in
  {
    Tgds.Chase.snap_engine = `Indexed;
    snap_policy = Tgds.Chase.Oblivious;
    snap_level;
    snap_saturated = true;
    snap_null_count = Term.null_count ();
    snap_triggers_fired = Hashtbl.length t.fired;
    snap_triggers_dismissed = 0;
    snap_facts;
    snap_counters = Obs.Metrics.counters (metrics t);
  }

let of_checkpoint ?engine ?obs sigma (s : Tgds.Chase.snapshot) =
  let db =
    List.fold_left
      (fun acc (f, l) -> if l = 0 then Instance.add_fact f acc else acc)
      Instance.empty s.Tgds.Chase.snap_facts
  in
  create ?engine ?obs sigma db

(* ---- exact images ----------------------------------------------------- *)

type image = {
  im_facts : (Fact.t * int) list;
  im_base : Fact.t list;
  im_ledger : ((int * Term.const option list) * Fact.t list * Fact.t list) list;
  im_syms : Term.const list;
  im_preds : string list;
  im_level : int;
  im_null_count : int;
  im_counters : (string * int) list;
}

(* Exactness argument: the only store state observable through the
   mutation/checkpoint API is (a) the facts and their index iteration
   order (candidate order during joins — determines firing order and
   hence fresh-null assignment of future propagation), (b) the s-levels,
   (c) the base set, (d) the live ledger (support counts, over-delete
   cascades), (e) [level], the global null counter and the metrics.
   [ordered_facts] captures (a) only together with the symbol table's
   interning order: facts are stored grouped by predicate id, so a
   predicate interned early whose facts were all later deleted still
   holds its low pid, and a rebuild that re-interned symbols from the
   surviving facts alone would assign different ids and a different
   storage order. [im_syms]/[im_preds] record the full id-order
   enumeration of both spaces; [of_image] re-interns them first, after
   which re-inserting [im_facts] in order reproduces (a) exactly (row
   handles and free-list state differ but are not observable). Every
   live derivation sits in [fired] (a killed record leaves [fired] at
   death), so folding [fired] captures (d) entirely.
   Ledger list order inside [derivs]/[uses] is not observable: every
   reader either folds associatively (relevel, support_count) or
   computes an order-independent closure (over-delete). *)
let image t =
  ensure_saturated t;
  ensure_clean t;
  let facts =
    List.map
      (fun f ->
        ( f,
          match Hashtbl.find_opt t.level_of f with Some l -> l | None -> 0 ))
      (Engine.Index.ordered_facts t.idx)
  in
  let base =
    List.sort Fact.compare (Hashtbl.fold (fun f () acc -> f :: acc) t.base [])
  in
  let ledger =
    List.sort
      (fun (k1, _, _) (k2, _, _) -> compare k1 k2)
      (Hashtbl.fold (fun k d acc -> (k, d.d_body, d.d_outs) :: acc) t.fired [])
  in
  let st = Engine.Index.symtab t.idx in
  let syms = List.init (Engine.Symtab.size st) (Engine.Symtab.extern st) in
  let preds =
    List.init (Engine.Symtab.pred_count st) (Engine.Symtab.extern_pred st)
  in
  {
    im_facts = facts;
    im_base = base;
    im_ledger = ledger;
    im_syms = syms;
    im_preds = preds;
    im_level = t.level;
    im_null_count = Term.null_count ();
    im_counters = Obs.Metrics.counters (metrics t);
  }

let of_image sigma (im : image) =
  let idx = Engine.Index.create () in
  let st = Engine.Index.symtab idx in
  List.iter (fun c -> ignore (Engine.Symtab.intern st c)) im.im_syms;
  List.iter (fun p -> ignore (Engine.Symtab.intern_pred st p)) im.im_preds;
  List.iter (fun (f, _) -> ignore (Engine.Index.insert f idx)) im.im_facts;
  let level_of = Hashtbl.create (max 16 (List.length im.im_facts)) in
  List.iter (fun (f, l) -> Hashtbl.replace level_of f l) im.im_facts;
  let base = Hashtbl.create (max 16 (List.length im.im_base)) in
  List.iter (fun f -> Hashtbl.replace base f ()) im.im_base;
  let derivs = Hashtbl.create 1024
  and uses = Hashtbl.create 1024
  and fired = Hashtbl.create 1024 in
  List.iter
    (fun (k, body, outs) ->
      let d = { d_key = k; d_body = body; d_outs = outs; d_live = true } in
      Hashtbl.replace fired k d;
      List.iter (fun f -> push uses f d) body;
      List.iter (fun f -> push derivs f d) outs)
    im.im_ledger;
  Term.set_null_count im.im_null_count;
  let m = Engine.Index.metrics idx in
  (* re-seed every counter to the image's total, cancelling the rebuild's
     own increments (the inserts above bumped [index.inserts] etc.) —
     same trick as [Saturate.resume] *)
  let names =
    List.sort_uniq String.compare
      (List.map fst im.im_counters @ List.map fst (Obs.Metrics.counters m))
  in
  List.iter
    (fun name ->
      let saved =
        match List.assoc_opt name im.im_counters with Some v -> v | None -> 0
      in
      let c = Obs.Metrics.counter m name in
      Obs.Metrics.add c (saved - Obs.Metrics.value c))
    names;
  {
    rules =
      List.map
        (fun t ->
          Engine.Saturate.{ body = Tgds.Tgd.body t; head = Tgds.Tgd.head t })
        sigma;
    idx;
    level_of;
    base;
    derivs;
    uses;
    fired;
    level = im.im_level;
    sat = true;
    dirty = false;
    c_inserts = Obs.Metrics.counter m "incr.inserts";
    c_deletes = Obs.Metrics.counter m "incr.deletes";
    c_noops = Obs.Metrics.counter m "incr.noops";
    c_repaired = Obs.Metrics.counter m "incr.repaired";
    c_overdeleted = Obs.Metrics.counter m "incr.overdeleted";
    c_rederived = Obs.Metrics.counter m "incr.rederived";
    c_deleted = Obs.Metrics.counter m "incr.deleted";
  }

let report ?(name = "incr") ?span t =
  let rep = Obs.Report.create ~metrics:(metrics t) ?span name in
  Obs.Report.add_field rep "saturated" (Obs.Json.Bool t.sat);
  Obs.Report.add_field rep "facts" (Obs.Json.Int (size t));
  Obs.Report.add_field rep "base_facts" (Obs.Json.Int (base_size t));
  rep
