
r2(X) -> r4(X).
q() :- p(X2,X1), p(X4,X1), p(X2,X3), p(X4,X3), r1(X1), r2(X2), r3(X3), r4(X4).
