test/test_qgraph.mli:
