(* Integration tests driving the built `guarded` CLI end to end: parse a
   program from disk, chase, evaluate open/closed world, classify, decide
   equivalence, run the clique reduction. *)

let check = Alcotest.(check bool)

let cli =
  (* tests run from _build/default/test; the binary is a declared dep *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/guarded_cli.exe"

let run_cli ?stdin args =
  let out_file = Filename.temp_file "guarded_cli" ".out" in
  let err_file = Filename.temp_file "guarded_cli" ".err" in
  let cmd =
    Filename.quote_command cli args ?stdin ~stdout:out_file ~stderr:err_file
  in
  let status = Sys.command cmd in
  let slurp path =
    if Sys.file_exists path then (
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s)
    else ""
  in
  let out = slurp out_file and err = slurp err_file in
  Sys.remove out_file;
  Sys.remove err_file;
  (status, out, err)

(* programs are checked in; the directory is a declared source_tree dep *)
let prog name = Filename.concat "../examples/programs" name

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_eval () =
  let file = prog "prog_eval.gd" in
  let status, out, err = run_cli [ "eval"; file; "-q"; "q" ] in
  check "exit 0" true (status = 0);
  check (Fmt.str "says true (out=%S err=%S)" out err) true (contains out "true");
  let _, out2, _ = run_cli [ "eval"; file; "-q"; "who" ] in
  check "ada is certain" true (contains out2 "ada")

let test_eval_fpt_flag () =
  let file = prog "prog_fpt.gd" in
  let status, out, _ = run_cli [ "eval"; file; "-q"; "q"; "--fpt" ] in
  check "exit 0" true (status = 0);
  check "fpt engine agrees" true (contains out "true")

let test_chase () =
  let file = prog "prog_chase.gd" in
  let status, out, _ = run_cli [ "chase"; file ] in
  check "exit 0" true (status = 0);
  check "saturated" true (contains out "saturated");
  check "derived course fact" true (contains out "course(");
  check "null printed" true (contains out "_:n")

let test_classify () =
  let file = prog "prog_cls.gd" in
  let status, out, _ = run_cli [ "classify"; file ] in
  check "exit 0" true (status = 0);
  check "linear" true (contains out "linear (L):           true");
  check "guarded" true (contains out "guarded (G):          true")

let test_cqs_eval_and_optimize () =
  let file = prog "prog_cqs.gd" in
  let status, out, _ = run_cli [ "cqs-eval"; file; "-q"; "q"; "--optimize" ] in
  check "exit 0" true (status = 0);
  check "answer o1" true (contains out "o1");
  check "optimized to single atom" true (contains out "optimized query")

let test_equiv () =
  let file = prog "prog_eq.gd" in
  let status, out, _ = run_cli [ "equiv"; file; "-q"; "q"; "-k"; "1" ] in
  check "exit 0" true (status = 0);
  check "holds" true (contains out "holds")

let test_rewrite () =
  let file = prog "prog_rw.gd" in
  let status, out, _ = run_cli [ "rewrite"; file; "-q"; "q" ] in
  check "exit 0" true (status = 0);
  check "original disjunct" true (contains out "s(");
  check "rewritten disjunct" true (contains out "a(")

let test_clique () =
  let status, out, _ = run_cli [ "clique"; "-n"; "7"; "-k"; "3"; "--seed"; "2" ] in
  check "exit 0" true (status = 0);
  check "reports both verdicts" true (contains out "direct search")

let test_terminates () =
  let file = prog "prog_term.gd" in
  let status, out, _ = run_cli [ "terminates"; file ] in
  check "exit 0" true (status = 0);
  check "weakly acyclic" true (contains out "weakly acyclic:            true");
  check "edges printed" true (contains out "->")

let test_witness () =
  let file = prog "prog_wit.gd" in
  let status, out, _ = run_cli [ "witness"; file; "-n"; "2" ] in
  check "exit 0" true (status = 0);
  check "model verified" true (contains out "model: true")

let test_reduce () =
  let file = prog "prog_red.gd" in
  let status, out, _ = run_cli [ "reduce"; file; "-q"; "q" ] in
  check "exit 0" true (status = 0);
  check "satisfies sigma" true (contains out "satisfies Σ: true")

(* The --stats report must be schema-stable: after normalising the (only
   volatile) float durations, the JSON for a fixed program is pinned
   byte-for-byte — keys, key order, counter values, span shape. *)
let golden_stats =
  String.concat ""
    [
      {|{"name":"chase","outcome":{"status":"complete"},"saturated":true,|};
      {|"max_level":2,"facts":3,"facts_per_level":[1,1],"triggers_fired":2,|};
      {|"triggers_dismissed":0,"counters":{"index.duplicates":0,|};
      {|"index.inserts":3,"index.probes":0,"index.removes":0,|};
      {|"joiner.backtracks":0,|};
      {|"joiner.candidates":2},"histograms":{},"span":{"name":"chase",|};
      {|"s":0.000000,"children":[{"name":"saturate","s":0.000000,"children":[|};
      {|{"name":"level","s":0.000000,"level":1,"triggers_fired":1,|};
      {|"triggers_dismissed":0,"new_facts":1},|};
      {|{"name":"level","s":0.000000,"level":2,"triggers_fired":1,|};
      {|"triggers_dismissed":0,"new_facts":1},|};
      {|{"name":"level","s":0.000000,"level":3,"triggers_fired":0,|};
      {|"triggers_dismissed":0,"new_facts":0}]}]}}|};
    ]

let test_chase_stats_golden () =
  let stats = Filename.temp_file "guarded_stats" ".json" in
  let status, _, err =
    run_cli [ "chase"; prog "prog_chase.gd"; "--stats"; stats ]
  in
  check (Fmt.str "exit 0 (err=%S)" err) true (status = 0);
  let ic = open_in stats in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove stats;
  match Obs.Json.parse raw with
  | Error e -> Alcotest.failf "stats file is not JSON: %s" e
  | Ok j ->
      (* key/type pins that must survive any refactor *)
      check "name is a string" true
        (match Obs.Json.member "name" j with
        | Some (Obs.Json.String _) -> true
        | _ -> false);
      check "outcome.status present" true
        (match Obs.Json.member "outcome" j with
        | Some o -> (
            match Obs.Json.member "status" o with
            | Some (Obs.Json.String _) -> true
            | _ -> false)
        | None -> false);
      check "facts_per_level is an int list" true
        (match Obs.Json.member "facts_per_level" j with
        | Some (Obs.Json.List l) ->
            List.for_all (function Obs.Json.Int _ -> true | _ -> false) l
        | _ -> false);
      check "counters is an object" true
        (match Obs.Json.member "counters" j with
        | Some (Obs.Json.Obj _) -> true
        | _ -> false);
      (* byte-level golden, volatile timings zeroed *)
      let normalized =
        Obs.Json.to_string (Obs.Json.map_floats (fun _ -> 0.) j)
      in
      Alcotest.(check string) "normalized report matches golden" golden_stats
        normalized

let test_chase_budget_flags () =
  let stats = Filename.temp_file "guarded_stats" ".json" in
  let status, out, err =
    run_cli
      [
        "chase"; prog "prog_budget.gd"; "--max-level"; "1000";
        "--budget-facts"; "25"; "--stats"; stats;
      ]
  in
  check (Fmt.str "graceful exit (err=%S)" err) true (status = 0);
  check "reports the partial cut" true (contains out "partial: fact budget (25)");
  (* trigger-atomic cutoff: the overflowing head lands, nothing more *)
  let fact_lines =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 0 && l.[0] = 's')
  in
  check "bounded materialisation" true (List.length fact_lines = 26);
  let ic = open_in stats in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove stats;
  match Obs.Json.parse raw with
  | Error e -> Alcotest.failf "stats file is not JSON: %s" e
  | Ok j -> (
      match Obs.Json.member "outcome" j with
      | Some o ->
          check "partial status" true
            (Obs.Json.member "status" o = Some (Obs.Json.String "partial"));
          check "max_facts reason" true
            (Obs.Json.member "reason" o = Some (Obs.Json.String "max_facts"))
      | None -> Alcotest.fail "outcome missing")

let test_errors_reported () =
  let file = prog "prog_bad.gd" in
  let status, _, err = run_cli [ "eval"; file ] in
  check "usage-error exit 2" true (status = 2);
  check "position in message" true (contains err "prog_bad.gd:1:");
  let status2, _, err2 = run_cli [ "eval"; prog "prog_eval.gd"; "-q"; "nope" ] in
  check "missing query reported" true (status2 = 2 && contains err2 "no query named")

(* Exit-code contract: 2 = usage/input error (bad program, precondition
   violation, malformed flag value), 1 = runtime fault; always a one-line
   diagnostic on stderr, never a backtrace. *)
let test_exit_codes () =
  let status, _, err =
    run_cli [ "eval"; prog "prog_unguarded.gd"; "-q"; "q"; "--fpt" ]
  in
  check "unguarded --fpt exits 2" true (status = 2);
  check "one-line diagnostic" true
    (contains err "guarded"
    && List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' err)) = 1);
  check "no backtrace" false (contains err "Raised at");
  let status2, _, err2 =
    run_cli [ "chase"; prog "prog_chase.gd"; "--fault-plan"; "bogus" ]
  in
  check "bad fault plan exits 2" true (status2 = 2);
  check "plan error names the trigger" true (contains err2 "bogus")

(* The checkpoint written for a fixed program is pinned byte-for-byte
   (schema, key order, fact encoding). Null ids are the only per-process
   volatile part; they are normalised to 0 before comparing. *)
let golden_checkpoint =
  String.concat ""
    [
      {|{"schema":"guarded-chase-checkpoint","version":1,"engine":"indexed",|};
      {|"policy":"oblivious","level":2,"saturated":true,"null_count":1,|};
      {|"triggers_fired":2,"triggers_dismissed":0,|};
      {|"counters":{"index.duplicates":0,"index.inserts":3,"index.probes":0,|};
      {|"index.removes":0,"joiner.backtracks":0,"joiner.candidates":2},|};
      {|"facts":[{"p":"prof","l":0,"a":["ada"]},|};
      {|{"p":"teaches","l":1,"a":["ada",{"n":0}]},|};
      {|{"p":"course","l":2,"a":[{"n":0}]}]}|};
    ]

let rec zero_nulls j =
  match j with
  | Obs.Json.Obj [ ("n", Obs.Json.Int _) ] -> Obs.Json.Obj [ ("n", Obs.Json.Int 0) ]
  | Obs.Json.Obj fields ->
      Obs.Json.Obj (List.map (fun (k, v) -> (k, zero_nulls v)) fields)
  | Obs.Json.List l -> Obs.Json.List (List.map zero_nulls l)
  | j -> j

let test_checkpoint_golden () =
  let ck = Filename.temp_file "guarded_ck" ".json" in
  let status, _, err =
    run_cli [ "chase"; prog "prog_chase.gd"; "--checkpoint"; ck ]
  in
  check (Fmt.str "exit 0 (err=%S)" err) true (status = 0);
  let ic = open_in ck in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove ck;
  match Obs.Json.parse raw with
  | Error e -> Alcotest.failf "checkpoint is not JSON: %s" e
  | Ok j ->
      Alcotest.(check string) "normalized checkpoint matches golden"
        golden_checkpoint
        (Obs.Json.to_string (zero_nulls j))

(* Kill a budgeted chase mid-run with an injected fault, resume from the
   emitted checkpoint in a fresh process, and require the resumed stats
   report to agree with an uninterrupted run on everything but timings
   (histograms/span are cut off: they only describe the post-resume part). *)
let test_fault_kill_and_resume () =
  let ck = Filename.temp_file "guarded_ck" ".json" in
  let s_base = Filename.temp_file "guarded_stats" ".json" in
  let s_res = Filename.temp_file "guarded_stats" ".json" in
  let budget = [ "--max-level"; "1000"; "--budget-facts"; "40" ] in
  let status, _, _ =
    run_cli
      ([ "chase"; prog "prog_budget.gd" ] @ budget
      @ [ "--fault-plan"; "hit:60,point:chase.pass:1"; "--retries"; "0";
          "--checkpoint"; ck ])
  in
  check "killed run exits 1" true (status = 1);
  let status2, _, err2 =
    run_cli ([ "chase"; prog "prog_budget.gd" ] @ budget @ [ "--resume"; ck; "--stats"; s_res ])
  in
  check (Fmt.str "resumed run exits 0 (err=%S)" err2) true (status2 = 0);
  let status3, _, _ =
    run_cli ([ "chase"; prog "prog_budget.gd" ] @ budget @ [ "--stats"; s_base ])
  in
  check "baseline exits 0" true (status3 = 0);
  let slurp path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let prefix s =
    (* keep name/outcome/fact counts/trigger totals/counters *)
    match String.index_opt s '{' with
    | None -> s
    | Some _ -> (
        match Obs.Json.parse s with
        | Error _ -> s
        | Ok j ->
            let keep k = Obs.Json.member k j in
            Obs.Json.to_string
              (Obs.Json.Obj
                 (List.filter_map
                    (fun k -> Option.map (fun v -> (k, v)) (keep k))
                    [
                      "name"; "outcome"; "saturated"; "max_level"; "facts";
                      "facts_per_level"; "triggers_fired"; "triggers_dismissed";
                      "counters";
                    ])))
  in
  let base = slurp s_base and resumed = slurp s_res in
  List.iter Sys.remove [ ck; s_base; s_res ];
  Alcotest.(check string) "resumed stats agree with uninterrupted run"
    (prefix base) (prefix resumed)

(* The parallel engine's determinism contract, end to end: for any
   domain count the CLI must print the same instance bytes, write the
   same checkpoint file, and report the same stats as `--domains 1` —
   and the same stdout/stats as the sequential indexed engine — up to
   the timing tail (histograms + span, cut off below). *)
let test_parallel_determinism () =
  let cut s =
    let marker = {|,"histograms":|} in
    let n = String.length s and m = String.length marker in
    let rec find i =
      if i + m > n then s
      else if String.sub s i m = marker then String.sub s 0 i
      else find (i + 1)
    in
    find 0
  in
  let slurp path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let budget = [ "--max-level"; "4"; "--budget-facts"; "200" ] in
  List.iter
    (fun name ->
      let run engine_flags =
        let ck = Filename.temp_file "guarded_ck" ".json" in
        let st = Filename.temp_file "guarded_stats" ".json" in
        let status, out, err =
          run_cli
            ([ "chase"; prog name ] @ budget @ engine_flags
            @ [ "--checkpoint"; ck; "--stats"; st ])
        in
        let cks = slurp ck and sts = slurp st in
        Sys.remove ck;
        Sys.remove st;
        check
          (Fmt.str "%s %s exits 0 (err=%S)" name
             (String.concat " " engine_flags)
             err)
          true (status = 0);
        (out, cks, cut sts)
      in
      let o1, c1, t1 = run [ "--domains"; "1" ] in
      let o4, c4, t4 = run [ "--domains"; "4" ] in
      let oi, _, ti = run [ "--engine"; "indexed" ] in
      Alcotest.(check string) (name ^ ": stdout identical across domains") o1 o4;
      Alcotest.(check string) (name ^ ": checkpoint identical across domains") c1 c4;
      Alcotest.(check string) (name ^ ": stats identical across domains") t1 t4;
      Alcotest.(check string) (name ^ ": stdout matches indexed engine") oi o1;
      Alcotest.(check string) (name ^ ": stats match indexed engine") ti t1)
    [ "prog_chase.gd"; "prog_budget.gd"; "prog_cqs.gd"; "university.gd" ]

(* serve: apply the committed mutation log to university.gd; the final
   instance is the fresh chase of the final base, and every maintenance
   phase shows up in the per-mutation trace. *)
let test_serve () =
  let status, out, err =
    run_cli
      [ "serve"; prog "university.gd"; "--log"; prog "university.mut" ]
  in
  check (Fmt.str "exit 0 (err=%S)" err) true (status = 0);
  check "initial saturation reported" true
    (contains out "% serve: store saturated, 9 facts");
  check "insert traced" true (contains out "% +prof(turing): 6 facts added");
  check "delete phases traced" true
    (contains out "% -prof(ada): overdeleted 6, rederived 1");
  check "no-op detected" true (contains out "% -prof(hopper): no-op");
  check "summary line" true
    (contains out "5 mutations applied (2 inserts, 2 deletes, 1 no-ops)");
  check "ada's subtree gone" false (contains out "faculty(ada)");
  check "turing's chain derived" true (contains out "teaches(turing,");
  check "base course survives" true (contains out "course(logic)")

(* serve inherits the CLI exit-code contract: 2 = usage/input error with
   a one-line diagnostic, 1 = runtime refusal (unsaturated store). *)
let test_serve_exit_codes () =
  let one_line err =
    List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' err))
    = 1
    && not (contains err "Raised at")
  in
  (* missing log file *)
  let status, _, err =
    run_cli [ "serve"; prog "university.gd"; "--log"; "no_such.mut" ]
  in
  check "missing log exits 2" true (status = 2);
  check "missing log: one-line diagnostic" true (one_line err);
  (* malformed log *)
  let bad = Filename.temp_file "guarded_bad" ".mut" in
  let oc = open_out bad in
  output_string oc "prof(x).\n";
  close_out oc;
  let status2, _, err2 =
    run_cli [ "serve"; prog "university.gd"; "--log"; bad ]
  in
  Sys.remove bad;
  check "unsigned mutation exits 2" true (status2 = 2);
  check "parse error names the position" true
    (one_line err2 && contains err2 ":1:");
  (* an unsaturated store refuses to serve: runtime error, exit 1 *)
  let status3, _, err3 =
    run_cli
      [
        "serve"; prog "prog_budget.gd"; "--log"; prog "university.mut";
        "--max-level"; "2";
      ]
  in
  check "unsaturated store exits 1" true (status3 = 1);
  check "refusal is one line" true
    (one_line err3 && contains err3 "saturat")

(* The serve --stats report is schema-stable: float durations are the
   only volatile part for a fixed program + log (nulls are allocated
   deterministically from a fresh counter), so the normalised JSON is
   pinned byte-for-byte like the chase golden above. *)
let test_serve_stats_golden () =
  let stats = Filename.temp_file "guarded_stats" ".json" in
  let status, _, err =
    run_cli
      [
        "serve"; prog "university.gd"; "--log"; prog "university.mut";
        "--stats"; stats;
      ]
  in
  check (Fmt.str "exit 0 (err=%S)" err) true (status = 0);
  let ic = open_in stats in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove stats;
  match Obs.Json.parse raw with
  | Error e -> Alcotest.failf "stats file is not JSON: %s" e
  | Ok j ->
      check "name is serve" true
        (Obs.Json.member "name" j = Some (Obs.Json.String "serve"));
      check "mutations counted" true
        (Obs.Json.member "mutations" j = Some (Obs.Json.Int 5));
      check "saturated" true
        (Obs.Json.member "saturated" j = Some (Obs.Json.Bool true));
      (* every maintenance counter present with its pinned value *)
      (match Obs.Json.member "counters" j with
      | Some c ->
          List.iter
            (fun (k, n) ->
              check (k ^ " pinned") true
                (Obs.Json.member k c = Some (Obs.Json.Int n)))
            [
              ("incr.inserts", 2); ("incr.deletes", 2); ("incr.noops", 1);
              ("incr.repaired", 9); ("incr.overdeleted", 11);
              ("incr.rederived", 2); ("incr.deleted", 9);
              ("index.removes", 11);
            ]
      | None -> Alcotest.fail "counters missing");
      (* per-mutation spans nest under the serve root, in log order *)
      (match Obs.Json.member "span" j with
      | Some s -> (
          match Obs.Json.member "children" s with
          | Some (Obs.Json.List kids) ->
              let tag k field =
                match Obs.Json.member field k with
                | Some (Obs.Json.String n) -> n
                | _ -> "?"
              in
              Alcotest.(check (list string))
                "span children are chase + one span per mutation"
                [
                  "chase"; "insert:prof(turing)"; "insert:teaches(ada,logic)";
                  "delete:prof(ada)"; "delete:teaches(ada,logic)";
                  "delete:prof(hopper)";
                ]
                (List.map
                   (fun k ->
                     match tag k "name" with
                     | "chase" -> "chase"
                     | n -> n ^ ":" ^ tag k "fact")
                   kids)
          | _ -> Alcotest.fail "serve span has no children")
      | None -> Alcotest.fail "span missing")

(* serve determinism end to end: identical stdout and checkpoint bytes
   across the engine family and domain counts (cf. the chase variant
   above) — the maintained store must not leak engine choice. *)
let test_serve_determinism () =
  let slurp path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let run engine_flags =
    let ck = Filename.temp_file "guarded_ck" ".json" in
    let status, out, err =
      run_cli
        ([ "serve"; prog "university.gd"; "--log"; prog "university.mut" ]
        @ engine_flags @ [ "--checkpoint"; ck ])
    in
    let cks = slurp ck in
    Sys.remove ck;
    check
      (Fmt.str "serve %s exits 0 (err=%S)" (String.concat " " engine_flags) err)
      true (status = 0);
    (out, cks)
  in
  let o1, c1 = run [ "--domains"; "1" ] in
  let o4, c4 = run [ "--domains"; "4" ] in
  let oi, ci = run [ "--engine"; "indexed" ] in
  Alcotest.(check string) "stdout identical across domains" o1 o4;
  Alcotest.(check string) "checkpoint identical across domains" c1 c4;
  Alcotest.(check string) "stdout matches indexed engine" oi o1;
  Alcotest.(check string) "checkpoint matches indexed engine" ci c1

(* A serve checkpoint of the maintained store resumes under `chase` as a
   no-op continuation of a fresh chase of the final base. *)
let test_serve_checkpoint_resumes () =
  let ck = Filename.temp_file "guarded_ck" ".json" in
  let status, out, _ =
    run_cli
      [
        "serve"; prog "university.gd"; "--log"; prog "university.mut";
        "--checkpoint"; ck;
      ]
  in
  check "serve exits 0" true (status = 0);
  let status2, out2, err2 =
    run_cli [ "chase"; prog "university.gd"; "--resume"; ck ]
  in
  Sys.remove ck;
  check (Fmt.str "resume exits 0 (err=%S)" err2) true (status2 = 0);
  check "resume is a no-op (saturated)" true (contains out2 "saturated");
  (* both print the same sorted fact lines *)
  let facts s =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '%')
  in
  Alcotest.(check (list string))
    "resumed instance equals the maintained one" (facts out) (facts out2)

let facts_of s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.length l > 0 && l.[0] <> '%')

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let with_tmpdir f =
  let dir = Filename.temp_file "guarded_wal" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* A crash mid-WAL-append (a fault injected at the fsync boundary leaves
   a torn record) recovers to a final state byte-identical to the
   uninterrupted run: same checkpoint bytes, same fact lines. *)
let test_serve_wal_crash_recovery () =
  with_tmpdir (fun dir ->
      let ck_ref = Filename.temp_file "guarded_ckref" ".json" in
      let ck_rec = Filename.temp_file "guarded_ckrec" ".json" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove ck_ref;
          Sys.remove ck_rec)
        (fun () ->
          let status, out_ref, _ =
            run_cli
              [
                "serve"; prog "university.gd"; "--log"; prog "university.mut";
                "--checkpoint"; ck_ref;
              ]
          in
          check "reference run exits 0" true (status = 0);
          let wal = Filename.concat dir "wal" in
          let status1, _, err1 =
            run_cli
              [
                "serve"; prog "university.gd"; "--log"; prog "university.mut";
                "--wal"; wal; "--checkpoint-every"; "2"; "--fault-plan";
                "point:wal.fsync:3";
              ]
          in
          check (Fmt.str "crashed run exits 1 (err=%S)" err1) true
            (status1 = 1);
          check "crash is diagnosed" true (contains err1 "wal.fsync");
          let status2, out_rec, err2 =
            run_cli
              [
                "serve"; prog "university.gd"; "--log"; prog "university.mut";
                "--wal"; wal; "--recover"; "--checkpoint-every"; "2";
                "--checkpoint"; ck_rec;
              ]
          in
          check (Fmt.str "recovered run exits 0 (err=%S)" err2) true
            (status2 = 0);
          check "recovery is reported" true (contains out_rec "recover:");
          check "torn record was truncated" true (contains out_rec "1 truncated");
          Alcotest.(check (list string))
            "recovered instance equals the uninterrupted one"
            (facts_of out_ref) (facts_of out_rec);
          check "recovered checkpoint is byte-identical" true
            (slurp ck_ref = slurp ck_rec)))

(* --recover needs a WAL directory to recover from. *)
let test_serve_recover_requires_wal () =
  let status, _, err =
    run_cli
      [ "serve"; prog "university.gd"; "--log"; prog "university.mut";
        "--recover" ]
  in
  check "exits 2" true (status = 2);
  check "names the missing flag" true (contains err "--wal")

(* Malformed log lines: strict mode (default) aborts naming the line and
   its content; --strict-log=false skips them with a warning and applies
   the rest. *)
let test_serve_strict_log () =
  let log = Filename.temp_file "guarded_badlog" ".mut" in
  Fun.protect
    ~finally:(fun () -> Sys.remove log)
    (fun () ->
      let oc = open_out log in
      output_string oc "+prof(turing).\nthis is not a mutation\n-prof(hopper).\n";
      close_out oc;
      let status, _, err =
        run_cli [ "serve"; prog "university.gd"; "--log"; log ]
      in
      check "strict mode exits 2" true (status = 2);
      check "diagnostic names the line" true (contains err ":2:");
      check "diagnostic shows the content" true
        (contains err "this is not a mutation");
      let status2, out2, err2 =
        run_cli
          [
            "serve"; prog "university.gd"; "--log"; log; "--strict-log";
            "false";
          ]
      in
      check (Fmt.str "lenient mode exits 0 (err=%S)" err2) true (status2 = 0);
      check "warning names the line" true (contains err2 ":2:");
      check "good mutations still applied" true
        (contains out2 "+prof(turing): "))

(* A poisoned mutation (faults on every rung of the ladder) is
   quarantined: the run keeps serving, later mutations apply, and the
   exit code reports the quarantine. *)
let test_serve_quarantine () =
  let status, out, err =
    run_cli
      [
        "serve"; prog "university.gd"; "--log"; prog "university.mut";
        "--retries"; "2"; "--fault-plan";
        "point:incr.delete:1,point:incr.delete:1";
      ]
  in
  check "quarantine exits 1" true (status = 1);
  check "ladder transcript printed" true (contains out "ladder:");
  check "mutation reported quarantined" true (contains out "quarantined");
  check "stderr diagnostic names the mutation" true
    (contains err "-prof(ada)");
  check "later mutations still apply" true
    (contains out "-teaches(ada,logic): overdeleted");
  check "summary counts the quarantine" true
    (contains out "1 mutation(s) quarantined")

(* A lenient run over a log carrying both malformed lines and a poison
   mutation keeps serving — and the stats report accounts for both:
   serve.rejected_lines counts exactly the skipped lines, the
   quarantined field the refused mutation. *)
let test_serve_rejected_lines_counter () =
  let log = Filename.temp_file "guarded_mixedlog" ".mut" in
  let stats = Filename.temp_file "guarded_stats" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove log;
      if Sys.file_exists stats then Sys.remove stats)
    (fun () ->
      let oc = open_out log in
      output_string oc
        "+prof(turing).\n\
         garbage line one\n\
         -prof(ada).\n\
         &&& also not a mutation\n\
         -prof(hopper).\n";
      close_out oc;
      let status, out, err =
        run_cli
          [
            "serve"; prog "university.gd"; "--log"; log; "--strict-log";
            "false"; "--retries"; "2"; "--fault-plan";
            "point:incr.delete:1,point:incr.delete:1"; "--stats"; stats;
          ]
      in
      check "quarantine still exits 1" true (status = 1);
      check "both malformed lines warned" true
        (contains err ":2:" && contains err ":4:");
      check "good mutations around the noise applied" true
        (contains out "+prof(turing): ");
      check "poison mutation quarantined" true
        (contains out "1 mutation(s) quarantined");
      let ic = open_in stats in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.parse raw with
      | Error e -> Alcotest.failf "stats file is not JSON: %s" e
      | Ok j ->
          check "quarantined field" true
            (Obs.Json.member "quarantined" j = Some (Obs.Json.Int 1));
          (match Obs.Json.member "counters" j with
          | Some c ->
              check "rejected lines counted exactly" true
                (Obs.Json.member "serve.rejected_lines" c
                = Some (Obs.Json.Int 2))
          | None -> Alcotest.fail "counters missing"))

(* A transient injected fault is absorbed by the supervisor: same exit
   code and facts as a clean run, plus a recovery note. *)
let test_fault_recovery_note () =
  let status, out, err =
    run_cli
      [ "chase"; prog "prog_chase.gd"; "--fault-plan"; "hit:3"; "--retries"; "2" ]
  in
  check (Fmt.str "recovered run exits 0 (err=%S)" err) true (status = 0);
  check "recovery note printed" true (contains out "recovered after");
  check "still saturates" true (contains out "saturated");
  check "derived course fact" true (contains out "course(")

(* server: saturate once, then answer protocol requests from stdin. The
   daemon's own behavior is unit-tested in test_server.ml; here we pin
   the CLI wrapper — banner, summary, exit codes. *)
let with_request_file lines f =
  let req = Filename.temp_file "guarded_req" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove req)
    (fun () ->
      let oc = open_out req in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      f req)

let test_server_answers () =
  with_request_file
    [
      "answers q(X) :- prof(X).";
      "count q(C) :- course(C).";
      "gibberish";
    ]
    (fun req ->
      let status, out, err =
        run_cli ~stdin:req [ "server"; prog "university.gd" ]
      in
      check (Fmt.str "request errors exit 1 (err=%S)" err) true (status = 1);
      check "banner reports the frozen store" true
        (contains out "% server: store saturated");
      check "profs answered" true (contains out "1 ok 1 (ada)");
      check "count answered" true (contains out "2 ok count=");
      check "malformed request answered in place" true
        (contains out "3 error unknown verb");
      check "summary counts classes" true
        (contains out "3 request(s) served (2 ok, 0 partial, 1 error(s), 0 \
                       quarantined)"))

let test_server_clean_exit () =
  with_request_file
    [ "answers q(X) :- prof(X)."; "% noise"; "" ]
    (fun req ->
      let status, out, err =
        run_cli ~stdin:req [ "server"; prog "university.gd"; "--workers"; "2" ]
      in
      check (Fmt.str "clean run exits 0 (err=%S)" err) true (status = 0);
      check "summary" true (contains out "1 request(s) served"))

let test_server_quarantine () =
  with_request_file
    [
      "answers q(X) :- prof(X).";
      "answers q(X) :- prof(X).";
      "count q(C) :- course(C).";
    ]
    (fun req ->
      let status, out, _ =
        run_cli ~stdin:req
          [
            "server"; prog "university.gd"; "--fault-plan";
            "point:engine.answer:1";
          ]
      in
      check "quarantine exits 1" true (status = 1);
      check "fault reported in the reply" true
        (contains out "1 error injected fault");
      check "repeat refused" true (contains out "2 quarantined");
      check "server keeps answering" true (contains out "3 ok count="))

let test_server_exit_codes () =
  (* fault injection arms a process-global hook: concurrent workers are
     a usage error, like any malformed flag combination *)
  let status, _, err =
    run_cli
      [
        "server"; prog "university.gd"; "--fault-plan"; "point:engine.answer:1";
        "--workers"; "4";
      ]
  in
  check "fault plan with workers exits 2" true (status = 2);
  check "diagnostic names the conflict" true (contains err "--workers 1");
  let status2, _, _ = run_cli [ "server"; prog "university.gd"; "--workers"; "0" ] in
  check "zero workers exits 2" true (status2 = 2)

(* SIGTERM drains promptly: the reader polls input readiness instead of
   blocking in [read], so an {e idle} server notices the flipped stop
   flag within its tick — no further request line needed — completes
   in-flight work, reports the drain, and exits 0. (The old reader sat
   in [input_line] until the next newline arrived, so an idle server
   hung in drain until one more request unblocked it.) *)
let test_server_sigterm_drain () =
  let out_file = Filename.temp_file "guarded_srv" ".out" in
  let err_file = Filename.temp_file "guarded_srv" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out_file;
      Sys.remove err_file)
    (fun () ->
      let fd_out =
        Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let fd_err =
        Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let r_in, w_in = Unix.pipe ~cloexec:false () in
      let pid =
        Unix.create_process cli
          [| cli; "server"; prog "university.gd" |]
          r_in fd_out fd_err
      in
      Unix.close r_in;
      Unix.close fd_out;
      Unix.close fd_err;
      let oc = Unix.out_channel_of_descr w_in in
      output_string oc "answers q(X) :- prof(X).\n";
      flush oc;
      (* wait for the first reply: the saturation is done and the serve
         loop is live, so the SIGTERM handler is installed *)
      let slurp_out () =
        let ic = open_in out_file in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let rec await tries =
        if tries = 0 then Alcotest.fail "server never replied"
        else if contains (slurp_out ()) "1 ok" then ()
        else (
          Unix.sleepf 0.05;
          await (tries - 1))
      in
      await 200;
      Unix.kill pid Sys.sigterm;
      (* no further input: the idle server must exit on its own, and
         promptly — poll for termination with a deadline far above the
         50 ms readiness tick but far below "waits for the next line" *)
      let t0 = Unix.gettimeofday () in
      let deadline = 10.0 in
      let rec await_exit () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () -. t0 > deadline then begin
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid);
              Alcotest.fail "idle server did not drain after SIGTERM"
            end
            else begin
              Unix.sleepf 0.02;
              await_exit ()
            end
        | _, status -> status
      in
      let status = await_exit () in
      let waited = Unix.gettimeofday () -. t0 in
      close_out_noerr oc;
      let out = slurp_out () in
      check "drained run exits 0" true (status = Unix.WEXITED 0);
      check (Fmt.str "drain is prompt (%.2fs)" waited) true (waited < 5.0);
      check "drain reported" true (contains out "% server: drained on signal"))

let () =
  Alcotest.run "cli"
    [
      ( "cli",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "eval --fpt" `Quick test_eval_fpt_flag;
          Alcotest.test_case "chase" `Quick test_chase;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "cqs-eval --optimize" `Quick test_cqs_eval_and_optimize;
          Alcotest.test_case "equiv" `Quick test_equiv;
          Alcotest.test_case "rewrite" `Quick test_rewrite;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "terminates" `Quick test_terminates;
          Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "chase --stats golden" `Quick test_chase_stats_golden;
          Alcotest.test_case "chase budget flags" `Quick test_chase_budget_flags;
          Alcotest.test_case "errors" `Quick test_errors_reported;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "checkpoint golden" `Quick test_checkpoint_golden;
          Alcotest.test_case "serve" `Quick test_serve;
          Alcotest.test_case "serve exit codes" `Quick test_serve_exit_codes;
          Alcotest.test_case "serve --stats golden" `Quick
            test_serve_stats_golden;
          Alcotest.test_case "serve determinism" `Quick test_serve_determinism;
          Alcotest.test_case "serve checkpoint resumes" `Quick
            test_serve_checkpoint_resumes;
          Alcotest.test_case "parallel engine determinism" `Quick
            test_parallel_determinism;
          Alcotest.test_case "fault kill and resume" `Quick
            test_fault_kill_and_resume;
          Alcotest.test_case "fault recovery note" `Quick
            test_fault_recovery_note;
          Alcotest.test_case "serve WAL crash recovery" `Quick
            test_serve_wal_crash_recovery;
          Alcotest.test_case "serve --recover requires --wal" `Quick
            test_serve_recover_requires_wal;
          Alcotest.test_case "serve strict-log modes" `Quick
            test_serve_strict_log;
          Alcotest.test_case "serve quarantines poison mutations" `Quick
            test_serve_quarantine;
          Alcotest.test_case "serve counts rejected log lines" `Quick
            test_serve_rejected_lines_counter;
          Alcotest.test_case "server answers requests" `Quick
            test_server_answers;
          Alcotest.test_case "server clean exit" `Quick test_server_clean_exit;
          Alcotest.test_case "server quarantines poison queries" `Quick
            test_server_quarantine;
          Alcotest.test_case "server exit codes" `Quick test_server_exit_codes;
          Alcotest.test_case "server drains on SIGTERM" `Quick
            test_server_sigterm_drain;
        ] );
    ]
